//! `abdex` — command-line front end for the design-exploration library.
//!
//! ```text
//! abdex run       --benchmark ipfwdr --traffic high --policy queue:high=0.8 [--cycles N]
//! abdex run       --traffic burst:on_mbps=1800,off_mbps=120,period_s=2 [--record FILE] [--obs-stats]
//! abdex run       --traffic "schedule:segments=[low@0..2e6; flash@2e6..4e6; low@4e6..]"
//! abdex replicate --policy tdvs:threshold=1400 --seeds 16 --ci 99 [--jobs N]
//! abdex sweep     --benchmark ipfwdr --traffic high [--cycles N] [--seed S] [--jobs N]
//! abdex sweep     --policies "nodvs;tdvs:threshold=1400;proportional:kp=6" [--seeds K]
//! abdex sweep     --traffics "low;burst;flash:peak_mbps=2000" [--policy tdvs]
//! abdex compare   [--traffics "low;high;flash"] [--seeds K] [--ci 90|95|99] [--json FILE]
//! abdex scenario  run <name|file.toml> [--cycles N] [--seeds K] [--ci L] [--jobs N] [--json FILE|-]
//! abdex scenario  list
//! abdex fleet     run [--chips N] [--dispatch SPEC] [--fleet-policy SPEC] [--seeds K] [--ci L] [--jobs N] [--json FILE|-]
//! abdex fleet     dispatchers
//! abdex fleet     policies
//! abdex cache     stats|clear [--cache-dir DIR]
//! abdex cache     gc --max-bytes N [--cache-dir DIR]
//! abdex obs       summarize rec.jsonl [--json FILE|-] [--jobs N]
//! abdex policies
//! abdex traffics
//! abdex trace     generate --traffic "stochastic:gap=pareto:alpha=1.3,size=lognormal:mu=6" -o t.trace
//! abdex trace     analyze t.trace [--json FILE|-] [--jobs N]
//! abdex trace     --benchmark url --traffic medium [--cycles N] [--out FILE]
//! abdex check     --formula "cycle(deq[i]) - cycle(enq[i]) <= 50" --trace FILE
//! abdex analyze   --formula "... dist== (a, b, s)" --trace FILE
//! abdex codegen   --formula "..."
//! ```
//!
//! `--policy` and `--traffic` accept the full spec grammar
//! `name[:key=val,...]` of [`PolicySpec::parse`] and
//! [`TrafficSpec::parse`]; `abdex policies` / `abdex traffics` list
//! every registered policy and traffic model with their parameters.
//! Names are case-insensitive; `low|medium|high` remain shorthands for
//! the paper's traffic levels.
//!
//! Sweeps and comparisons execute on the [`xrun`] thread pool: `--jobs`
//! picks the worker count (default: one per CPU; results are
//! bit-identical for any value), `--progress` selects a stderr progress
//! style (`stats` appends per-worker busy/wait telemetry), and `--json`
//! writes the results as a machine-readable document next to the human
//! tables. `--record` additionally exports the recorded per-window
//! timeseries as schema-versioned JSONL (`run`, `replicate`,
//! `scenario run`, `fleet run`; byte-identical for any `--jobs`), and
//! `--obs-stats` prints the event kernel's counters and
//! simulated-cycles-per-second on stderr.
//!
//! `--seeds K` replicates every cell K times over seed-derived streams
//! (`derive_seed(seed, i)`) and reports each metric as a `mean ±
//! half-width` Student-t confidence interval at the `--ci` level
//! (90/95/99, default 95). `abdex replicate` is the single-cell form
//! with full per-metric statistics (and, unlike `run`, a `--jobs`
//! flag).
//!
//! `abdex scenario run <name|file>` executes a time-varying composite
//! scenario (see `abdex scenario list` for the built-in library): each
//! policy × replicate simulates the whole horizon once, snapshotted at
//! the schedule's segment boundaries, and the tables/JSON report
//! per-segment metric breakdowns alongside the whole-run numbers.
//!
//! `abdex fleet run` simulates `--chips` NPUs behind a load balancer:
//! `--dispatch` shards the aggregate `--traffic` stream across the
//! chips (see `abdex fleet dispatchers`), every chip runs its own
//! `--policy`, and `--fleet-policy` turns a fleet-wide watt budget into
//! per-chip power caps (see `abdex fleet policies`). Results are
//! bit-identical for any `--jobs` value.
//!
//! `--cache` (or any `--cache-dir`) consults a content-addressed result
//! store before simulating and publishes fresh results after: a warm
//! re-run of `run`/`replicate`/`sweep`/`compare`/`scenario run`/
//! `fleet run` performs zero simulations yet produces byte-identical
//! stdout. Hit/miss/store tallies land on stderr; `abdex cache
//! stats|gc|clear` manage the store. `--record` always re-simulates
//! single-chip paths so exported recordings are first-hand (fleet runs
//! cache their recordings alongside the reports).
//!
//! `--json -` writes the machine-readable document to **stdout** (the
//! human-readable tables move to stderr), so any command's results pipe
//! without a temp file: `abdex scenario run diurnal-day --json - | jq .`
//!
//! `--profile FILE` (any command) writes a Chrome Trace Event JSON of
//! the invocation's phases — parse/plan/simulate/fold/render spans,
//! per-job worker spans, cache-lookup hit/miss spans — viewable in
//! Perfetto or `chrome://tracing`; `--profile-summary` prints the
//! per-phase wall-time table on stderr. Both are pure observability:
//! stdout stays byte-identical to an unprofiled invocation. `abdex obs
//! summarize <record.jsonl>` closes the `--record` loop, folding an
//! exported recording back into per-channel statistics (bit-identical
//! for any `--jobs`).

use std::collections::HashMap;
use std::process::ExitCode;
use std::time::Instant;

use abdex::compare::{try_compare_policies, ComparisonConfig};
use abdex::experiment::partition_cells;
use abdex::fleet::{run_fleet, DispatchRegistry, FleetConfig, FleetPolicyRegistry};
use abdex::json::{
    comparison_json, experiment_json, replicated_compare_json, replicated_run_json,
    replicated_spec_sweep_json, replicated_tdvs_sweep_json, replicated_traffic_sweep_json,
    spec_sweep_json, tdvs_sweep_json, traffic_sweep_json,
};
use abdex::json::{fleet_json, scenario_json, trace_analysis_json};
use abdex::nepsim::{Benchmark, NpuConfig, Simulator, TraceConfig};
use abdex::record::{
    fleet_record_series, record_jsonl, render_obs_stats, scenario_record_series,
    try_replicated_run_recorded, RecordedSeries,
};
use abdex::replicate::{
    try_replicated_compare, try_replicated_run, try_replicated_sweep_specs,
    try_replicated_sweep_tdvs, try_replicated_sweep_traffics,
};
use abdex::scenario::{self, Scenario};
use abdex::sweep::{try_sweep_specs, try_sweep_tdvs, try_sweep_traffics};
use abdex::tables::{
    render_comparison, render_fleet, render_replicated_comparison, render_replicated_run,
    render_replicated_spec_sweep, render_replicated_sweep, render_replicated_traffic_sweep,
    render_scenario, render_spec_sweep, render_surface, render_sweep, render_trace_analysis,
    render_traffic_sweep,
};
use abdex::traceio::{analyze_trace, generate_trace};
use abdex::traffic::RecordedTrace;
use abdex::{
    optimal_tdvs, ConfidenceLevel, DesignPriority, Experiment, JobError, PolicyRegistry,
    PolicySpec, ProgressMode, Runner, TdvsGrid, TrafficRegistry, TrafficSpec, PAPER_RUN_CYCLES,
};
use loc::{parse, Analyzer, Checker, Trace};

const USAGE: &str = "\
abdex — assertion-based design exploration of DVS in NPU architectures

USAGE:
    abdex <run|replicate|sweep|compare|scenario|fleet|cache|obs|policies|traffics|trace|check|analyze|codegen> [OPTIONS]

SCENARIOS:
    abdex scenario run <name|file.toml>  run a time-varying composite scenario
                                         (per-segment metric breakdowns; the
                                         usual --cycles/--seed/--seeds/--ci/
                                         --jobs/--progress/--json apply)
    abdex scenario list                  list the built-in scenario library

FLEETS:
    abdex fleet run                      simulate --chips NPUs behind a load
                                         balancer: --dispatch shards the
                                         aggregate --traffic stream, each chip
                                         runs --policy, --fleet-policy caps
                                         chip power from a fleet watt budget
                                         (plus --benchmark/--cycles/--seed/
                                         --seeds/--ci/--jobs/--progress/--json)
    abdex fleet dispatchers              list the registered dispatchers
    abdex fleet policies                 list the registered fleet policies

CACHE:
    abdex cache stats                    entry count, bytes and lifetime
                                         hit/miss/store tallies of the store
    abdex cache gc --max-bytes <N>       evict oldest entries until the store
                                         fits in N bytes
    abdex cache clear                    remove every cache entry
                                         (all three honour --cache-dir)

OBSERVABILITY:
    abdex obs summarize <record.jsonl>   per-channel n/min/mean/max and sketch
                                         p50/p95/p99 of a --record export
                                         (--json FILE|-, --jobs N; output is
                                         byte-identical for any worker count)

TRACES:
    abdex trace generate                 record --traffic's packet stream
                                         (--seed, --cycles of 600 MHz base
                                         clock) as a replayable trace file
                                         (--out/-o FILE, else stdout); replay
                                         it with --traffic trace:file=FILE
    abdex trace analyze <file>           inter-arrival/size statistics and a
                                         Hurst-style burstiness proxy of a
                                         recorded trace (--json FILE|-,
                                         --jobs N; output is byte-identical
                                         for any worker count)
    abdex trace --benchmark ...          legacy: LOC-event trace of one run
                                         (--traffic/--cycles/--seed/--out)

OPTIONS (where applicable):
    --benchmark <ipfwdr|url|nat|md4>   benchmark application [ipfwdr]
    --traffic   <spec>                 traffic-model spec [high]
                                       grammar: name[:key=val,...], e.g.
                                       burst:on_mbps=1800,off_mbps=120
                                       (low|medium|high = paper levels;
                                       see `abdex traffics` for names/keys)
    --traffics  <spec;spec;...>        traffic-spec sweep list (sweep,
                                       compare)
    --policy    <spec>                 DVS policy spec (run; also fixes the
                                       policy of sweep --traffics) [nodvs]
                                       grammar: name[:key=val,...], e.g.
                                       tdvs:threshold=1400,window=40000
                                       (see `abdex policies` for names/keys)
    --policies  <spec;spec;...>        policy-spec sweep list (sweep)
    --chips     <N>                    fleet size (fleet run) [8]
    --dispatch  <spec>                 dispatcher sharding the aggregate
                                       stream (fleet run) [round-robin]
                                       grammar: name[:key=val,...], e.g.
                                       least-loaded:flows=512 (see
                                       `abdex fleet dispatchers`)
    --fleet-policy <spec>              fleet-wide power policy (fleet run)
                                       [none], e.g. cap-realloc:budget=8
                                       (see `abdex fleet policies`)
    --threshold <Mbps>                 legacy: TDVS top threshold, only with
                                       bare --policy tdvs [1000]
    --window    <cycles>               legacy: monitor window, only with bare
                                       --policy tdvs|edvs [40000]
    --cycles    <N>                    cycles per configuration [8000000]
    --seed      <N>                    experiment seed [42]
    --seeds     <K>                    replicates per cell over derived
                                       seeds; metrics become mean ± CI
                                       (run/sweep/compare [1],
                                       replicate [8])
    --ci        <90|95|99>             confidence level of the reported
                                       intervals (needs --seeds >= 2) [95]
    --jobs      <N>                    parallel workers for
                                       replicate/sweep/compare
                                       (0 = one per CPU) [0]
    --progress  <quiet|dot|line|stats> batch progress on stderr [quiet]
                                       (stats appends per-worker busy/
                                       wait telemetry after the batch)
    --json      <file|->               also write results as JSON
                                       (run/replicate/sweep/compare/
                                       scenario run); `-` writes the
                                       document to stdout and moves the
                                       human tables to stderr
    --cache                            reuse cached results and cache fresh
                                       ones (run/replicate/sweep/compare/
                                       scenario run/fleet run); warm runs
                                       skip simulation with byte-identical
                                       stdout; tallies go to stderr
    --no-cache                         force caching off
    --cache-dir <dir>                  cache directory [.abdex-cache];
                                       implies --cache
    --record    <file>                 also write the recorded per-window
                                       timeseries as JSONL (run/replicate/
                                       scenario run/fleet run); byte-
                                       identical for any --jobs value
    --obs-stats                        print event-kernel counters and
                                       simulated-cycles-per-second on
                                       stderr (run/replicate)
    --profile   <file>                 write a Chrome Trace Event JSON of
                                       this invocation's phases (every
                                       command; open in Perfetto or
                                       chrome://tracing); stdout stays
                                       byte-identical to an unprofiled run
    --profile-summary                  print a per-phase wall-time table
                                       (count/total/self/mean) on stderr
    --formula   <text>                 LOC formula (check/analyze/codegen)
    --trace     <file>                 trace file in NePSim text format
    --out       <file>                 output path (trace)
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Arm the profiler before any work so the `parse` span and every
    // later phase land in the trace. The raw-args scan (rather than the
    // per-command option parser) is deliberate: the flags are global,
    // and the export must happen even when a command fails early.
    let profiling = args
        .iter()
        .any(|a| a == "--profile" || a == "--profile-summary");
    if profiling {
        abdex::obs::prof::set_enabled(true);
    }
    let mut result = dispatch(&args);
    if profiling {
        // The command's work is over; exporting now captures every
        // span, including the worker threads' (already flushed — the
        // pools are scoped). A failed export fails the invocation, but
        // never eats the command's own error.
        if let Err(e) = finish_profile(&args) {
            result = result.and(Err(e));
        }
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            // An empty message means usage was already printed.
            if !e.is_empty() {
                eprintln!("error: {e}");
            }
            ExitCode::FAILURE
        }
    }
}

/// Writes the drained profile: the Chrome trace to the `--profile`
/// path and/or the per-phase summary table to stderr. Everything lands
/// on stderr or the file — stdout stays byte-identical to an
/// unprofiled invocation.
fn finish_profile(args: &[String]) -> Result<(), String> {
    let profile = abdex::obs::prof::drain();
    if let Some(i) = args.iter().position(|a| a == "--profile") {
        let path = args
            .get(i + 1)
            .ok_or_else(|| "--profile needs a value".to_owned())?;
        std::fs::write(path, profile.chrome_trace_json())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!(
            "wrote Chrome trace of {} span(s) to {path} (open in Perfetto or chrome://tracing)",
            profile.spans.len()
        );
    }
    if args.iter().any(|a| a == "--profile-summary") {
        eprint!("{}", profile.summary_table());
    }
    Ok(())
}

fn dispatch(args: &[String]) -> Result<(), String> {
    let Some((command, rest)) = args.split_first() else {
        eprint!("{USAGE}");
        return Err(String::new());
    };
    // `scenario`, `fleet`, `trace` and `obs` take positional arguments
    // (`run <name|file>`, `analyze <file>`, `summarize <file>`), so
    // they dispatch before the flag-only parser below.
    if ["scenario", "fleet", "trace", "cache", "obs"].contains(&command.as_str()) {
        return match command.as_str() {
            "scenario" => cmd_scenario(rest),
            "fleet" => cmd_fleet(rest),
            "cache" => cmd_cache(rest),
            "obs" => cmd_obs(rest),
            _ => cmd_trace_dispatch(rest),
        };
    }
    let opts = match parse_opts(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n");
            eprint!("{USAGE}");
            return Err(String::new());
        }
    };
    // Every command rejects options it would otherwise silently ignore
    // (`sweep --policy ...` must not quietly run the default TDVS grid).
    let result = match command.as_str() {
        "run" => check_opts(
            &opts,
            &[
                "benchmark",
                "traffic",
                "policy",
                "threshold",
                "window",
                "cycles",
                "seed",
                "seeds",
                "ci",
                "json",
                "record",
                "obs-stats",
                "cache",
                "no-cache",
                "cache-dir",
            ],
        )
        .and_then(|()| cmd_run(&opts)),
        "replicate" => check_opts(
            &opts,
            &[
                "benchmark",
                "traffic",
                "policy",
                "cycles",
                "seed",
                "seeds",
                "ci",
                "jobs",
                "progress",
                "json",
                "record",
                "obs-stats",
                "cache",
                "no-cache",
                "cache-dir",
            ],
        )
        .and_then(|()| cmd_replicate(&opts)),
        "sweep" => check_opts(
            &opts,
            &[
                "benchmark",
                "traffic",
                "traffics",
                "policy",
                "policies",
                "cycles",
                "seed",
                "seeds",
                "ci",
                "jobs",
                "progress",
                "json",
                "cache",
                "no-cache",
                "cache-dir",
            ],
        )
        .and_then(|()| cmd_sweep(&opts)),
        "compare" => check_opts(
            &opts,
            &[
                "traffics",
                "cycles",
                "seed",
                "seeds",
                "ci",
                "jobs",
                "progress",
                "json",
                "cache",
                "no-cache",
                "cache-dir",
            ],
        )
        .and_then(|()| cmd_compare(&opts)),
        "policies" => check_opts(&opts, &[]).and_then(|()| cmd_policies()),
        "traffics" => check_opts(&opts, &[]).and_then(|()| cmd_traffics()),
        "check" => check_opts(&opts, &["formula", "trace"]).and_then(|()| cmd_check(&opts)),
        "analyze" => check_opts(&opts, &["formula", "trace"]).and_then(|()| cmd_analyze(&opts)),
        "codegen" => check_opts(&opts, &["formula"]).and_then(|()| cmd_codegen(&opts)),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'")),
    };
    result
}

type Opts = HashMap<String, String>;

/// The flags that are switches rather than `--flag value` pairs.
const VALUELESS_FLAGS: &[&str] = &["obs-stats", "cache", "no-cache", "profile-summary"];

/// The global profiling flags, accepted by every command (see
/// [`check_opts`]).
const PROFILE_FLAGS: &[&str] = &["profile", "profile-summary"];

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let _prof = abdex::obs::prof::span("parse");
    let mut opts = HashMap::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let Some(name) = flag.strip_prefix("--") else {
            return Err(format!("expected --flag, found '{flag}'"));
        };
        if VALUELESS_FLAGS.contains(&name) {
            opts.insert(name.to_owned(), String::new());
            continue;
        }
        let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
        opts.insert(name.to_owned(), value.clone());
    }
    Ok(opts)
}

fn check_opts(opts: &Opts, allowed: &[&str]) -> Result<(), String> {
    // The profiling flags are global: every command accepts them, so
    // they are allowed by construction rather than listed per command.
    let mut stray: Vec<&str> = opts
        .keys()
        .map(String::as_str)
        .filter(|key| !allowed.contains(key) && !PROFILE_FLAGS.contains(key))
        .collect();
    stray.sort_unstable();
    match stray.first() {
        None => Ok(()),
        Some(key) => Err(format!(
            "--{key} is not an option of this command (see `abdex help`)"
        )),
    }
}

fn benchmark(opts: &Opts) -> Result<Benchmark, String> {
    match opts.get("benchmark") {
        None => Ok(Benchmark::Ipfwdr),
        // Case-insensitive; the error lists every known benchmark.
        Some(name) => name.parse(),
    }
}

fn traffic(opts: &Opts) -> Result<TrafficSpec, String> {
    match opts.get("traffic") {
        None => Ok(TrafficSpec::parse("high").expect("builtin level")),
        Some(spec) => parse_traffic(spec),
    }
}

/// Parses a traffic spec and preflights that its model actually builds
/// (a `trace:` file is read here), so a bad spec fails in milliseconds
/// instead of panicking mid-batch.
fn parse_traffic(spec: &str) -> Result<TrafficSpec, String> {
    let spec = TrafficSpec::parse(spec).map_err(|e| e.to_string())?;
    spec.model().map_err(|e| e.to_string())?;
    Ok(spec)
}

/// Parses a `spec;spec;...` list with the given per-item parser.
fn spec_list<T>(list: &str, parse: impl Fn(&str) -> Result<T, String>) -> Result<Vec<T>, String> {
    list.split(';')
        .filter(|s| !s.trim().is_empty())
        .map(parse)
        .collect()
}

fn number<T: std::str::FromStr>(opts: &Opts, name: &str, default: T) -> Result<T, String> {
    match opts.get(name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("--{name}: bad value '{v}'")),
    }
}

fn policy(opts: &Opts) -> Result<PolicySpec, String> {
    // Bare `tdvs`/`edvs` keep honouring the legacy standalone flags they
    // actually use; any other combination would silently ignore a flag,
    // so it is rejected — a run must never execute with a different
    // configuration than the user asked for.
    let (spec, consumed): (Option<String>, &[&str]) = match opts.get("policy").map(String::as_str) {
        None => (None, &[]),
        Some("tdvs") => {
            let threshold: f64 = number(opts, "threshold", 1000.0)?;
            let window: u64 = number(opts, "window", 40_000)?;
            (
                Some(format!("tdvs:threshold={threshold},window={window}")),
                &["threshold", "window"],
            )
        }
        Some("edvs") => {
            let window: u64 = number(opts, "window", 40_000)?;
            (Some(format!("edvs:window={window}")), &["window"])
        }
        Some(other) => (Some(other.to_owned()), &[]),
    };
    if let Some(stray) = ["threshold", "window"]
        .into_iter()
        .find(|f| opts.contains_key(*f) && !consumed.contains(f))
    {
        return Err(format!(
            "--{stray} does not apply to this policy; put the parameter in the \
             spec instead, e.g. --policy tdvs:threshold=1400,window=20000",
        ));
    }
    match spec {
        None => Ok(PolicySpec::NoDvs),
        Some(spec) => PolicySpec::parse(&spec).map_err(|e| e.to_string()),
    }
}

/// Parses `--seeds` (replicates per cell, `default_seeds` when absent)
/// and `--ci` (confidence level, 95 % when absent). `--ci` without at
/// least two replicates would report a meaningless zero-width interval,
/// so that combination is rejected instead of silently honoured.
fn replication_opts(opts: &Opts, default_seeds: u64) -> Result<(u64, ConfidenceLevel), String> {
    let seeds: u64 = number(opts, "seeds", default_seeds)?;
    if seeds == 0 {
        return Err("--seeds needs at least one replicate".to_owned());
    }
    let level: ConfidenceLevel = match opts.get("ci") {
        None => ConfidenceLevel::default(),
        Some(v) => {
            if seeds < 2 {
                return Err(
                    "--ci needs --seeds >= 2 (one replicate carries no variance)".to_owned(),
                );
            }
            v.parse()?
        }
    };
    Ok((seeds, level))
}

/// Builds the result cache from `--cache`/`--no-cache`/`--cache-dir`.
/// Caching is off by default; `--cache` or a `--cache-dir` turns it on,
/// `--no-cache` forces it off, and asking for both ways at once is
/// rejected rather than silently resolved.
fn cache(opts: &Opts) -> Result<Option<abdex::Cache>, String> {
    if opts.contains_key("cache") && opts.contains_key("no-cache") {
        return Err("--cache and --no-cache contradict each other".to_owned());
    }
    if opts.contains_key("no-cache")
        || !(opts.contains_key("cache") || opts.contains_key("cache-dir"))
    {
        return Ok(None);
    }
    let dir = opts
        .get("cache-dir")
        .map(String::as_str)
        .unwrap_or(abdex::ccache::DEFAULT_DIR);
    abdex::Cache::open(dir).map(Some)
}

/// Attaches the `--cache` result store to a runner, when asked for.
fn with_cache(runner: Runner, opts: &Opts) -> Result<Runner, String> {
    match cache(opts)? {
        None => Ok(runner),
        Some(cache) => Ok(runner.with_cache(cache)),
    }
}

/// Prints this invocation's cache tallies on stderr and folds them into
/// the store's persisted lifetime counters (what `abdex cache stats`
/// reads). Stdout stays byte-identical to an uncached run — the
/// counters are deliberately stderr-only.
fn report_cache(cache: Option<&abdex::Cache>) {
    let Some(cache) = cache else { return };
    eprintln!("cache: {}", cache.counters());
    cache.flush_counters();
}

/// Builds the batch runner from `--jobs`, `--progress` and the cache
/// flags.
fn runner(opts: &Opts) -> Result<Runner, String> {
    let jobs: usize = number(opts, "jobs", 0)?;
    let progress: ProgressMode = match opts.get("progress") {
        None => ProgressMode::Quiet,
        Some(v) => v.parse()?,
    };
    with_cache(
        Runner::new()
            .with_workers(jobs)
            .with_progress_mode(progress),
        opts,
    )
}

/// `true` when `--json -` claims stdout for the machine document (the
/// human-readable output then goes to stderr so stdout stays pipeable).
fn json_to_stdout(opts: &Opts) -> bool {
    opts.get("json").is_some_and(|path| path == "-")
}

/// Prints a block of human-readable output: stdout normally, stderr
/// when `--json -` reserves stdout for the JSON document.
fn emit(opts: &Opts, text: &str) {
    let _prof = abdex::obs::prof::span("render");
    if json_to_stdout(opts) {
        eprintln!("{text}");
    } else {
        println!("{text}");
    }
}

/// Fails fast when the `--json`, `--record` or `--profile` path is
/// unwritable,
/// *before* a potentially minutes-long batch runs. Opens in append
/// mode so an existing file is probed without being truncated. `-`
/// (stdout) needs no probe.
fn preflight_json(opts: &Opts) -> Result<(), String> {
    for key in ["json", "record", "profile"] {
        if let Some(path) = opts.get(key) {
            if key == "json" && path == "-" {
                continue;
            }
            std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .map_err(|e| format!("cannot write {path}: {e}"))?;
        }
    }
    Ok(())
}

/// Whether this invocation needs the recorded execution path at all
/// (`--record` exports the samples, `--obs-stats` the kernel tallies).
fn wants_recording(opts: &Opts) -> bool {
    opts.contains_key("record") || opts.contains_key("obs-stats")
}

/// Writes the recorded timeseries to the `--record` path, if given.
/// The byte count lands on stderr so stdout stays identical to an
/// unrecorded invocation.
fn write_record(opts: &Opts, source: &str, series: &[RecordedSeries]) -> Result<(), String> {
    let Some(path) = opts.get("record") else {
        return Ok(());
    };
    let doc = record_jsonl(source, series);
    std::fs::write(path, &doc).map_err(|e| format!("cannot write {path}: {e}"))?;
    eprintln!(
        "wrote {} bytes of record JSONL ({} series) to {path}",
        doc.len(),
        series.len()
    );
    Ok(())
}

/// Prints the `--obs-stats` kernel-counter block to stderr, if asked.
fn emit_obs_stats(opts: &Opts, series: &[RecordedSeries], cycles: u64, start: Instant) {
    if opts.contains_key("obs-stats") {
        eprintln!("{}", render_obs_stats(series, cycles, start.elapsed()));
    }
}

/// Writes the rendered JSON document to the `--json` path, if given;
/// `-` prints the document to stdout (and nothing else lands there —
/// see [`emit`]), so results pipe without a temp file.
fn write_json(opts: &Opts, render: impl FnOnce() -> String) -> Result<(), String> {
    let render = || {
        let _prof = abdex::obs::prof::span("render");
        render()
    };
    match opts.get("json").map(String::as_str) {
        None => Ok(()),
        Some("-") => {
            println!("{}", render());
            Ok(())
        }
        Some(path) => {
            let doc = render();
            std::fs::write(path, &doc).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("wrote {} bytes of JSON to {path}", doc.len());
            Ok(())
        }
    }
}

/// Finishes a batch command: prints every per-cell failure to stderr
/// (always — even when the `--json` write also failed), then reports
/// the first error. The completed cells were already rendered by the
/// caller, so partial results survive any failure mode.
fn finish_batch(
    pool: &Runner,
    json: Result<(), String>,
    errors: Vec<JobError>,
) -> Result<(), String> {
    report_cache(pool.cache());
    for e in &errors {
        eprintln!("cell failed: {e}");
    }
    match (json, errors.len()) {
        (json, 0) => json,
        (Ok(()), n) => Err(format!("{n} cell(s) failed")),
        (Err(j), n) => Err(format!("{j}; additionally {n} cell(s) failed")),
    }
}

fn cmd_run(opts: &Opts) -> Result<(), String> {
    let plan = abdex::obs::prof::span("plan");
    let experiment = Experiment {
        benchmark: benchmark(opts)?,
        traffic: traffic(opts)?,
        policy: policy(opts)?,
        cycles: number(opts, "cycles", PAPER_RUN_CYCLES)?,
        seed: number(opts, "seed", 42)?,
    };
    let (seeds, level) = replication_opts(opts, 1)?;
    preflight_json(opts)?;
    drop(plan);
    if seeds > 1 {
        // `run` stays a deliberately serial command (no --jobs); the
        // replicates execute inline. `abdex replicate` is the parallel
        // form.
        let pool = with_cache(Runner::serial(), opts)?;
        return finish_replicated_run(opts, &pool, &experiment, seeds, level);
    }
    // The recorded path is taken only on request, so a plain `run`
    // keeps the exact execution (and output bytes) it always had. It
    // also bypasses the cache: a recording export must come from a real
    // simulation of this invocation.
    let cache = cache(opts)?;
    let start = Instant::now();
    let (r, series) = if wants_recording(opts) {
        let (r, recording) = experiment.run_recorded();
        let kernel = r.sim.kernel;
        (
            r,
            vec![RecordedSeries {
                label: "rep0".to_owned(),
                kernel,
                recording,
            }],
        )
    } else {
        (abdex::run_cached(cache.as_ref(), &experiment), Vec::new())
    };
    let mut text = format!(
        "{} @ {} under {} for {} cycles (seed {})\n",
        experiment.benchmark, experiment.traffic, r.sim.policy, experiment.cycles, experiment.seed
    );
    text.push_str(&format!(
        "  offered        : {:9.1} Mbps\n",
        r.sim.offered_mbps()
    ));
    text.push_str(&format!(
        "  throughput     : {:9.1} Mbps\n",
        r.sim.throughput_mbps()
    ));
    text.push_str(&format!(
        "  mean power     : {:9.3} W\n",
        r.sim.mean_power_w()
    ));
    text.push_str(&format!("  p80 power      : {:9.3} W\n", r.p80_power_w()));
    text.push_str(&format!(
        "  p80 throughput : {:9.1} Mbps\n",
        r.p80_throughput_mbps()
    ));
    text.push_str(&format!("  loss ratio     : {:9.4}\n", r.sim.loss_ratio()));
    text.push_str(&format!(
        "  rx idle        : {:9.3}\n",
        r.sim.rx_idle_fraction()
    ));
    text.push_str(&format!("  VF switches    : {:9}", r.sim.total_switches));
    emit(opts, &text);
    report_cache(cache.as_ref());
    emit_obs_stats(opts, &series, experiment.cycles, start);
    write_record(opts, "run", &series)?;
    write_json(opts, || experiment_json(&r))
}

/// Replicates one cell `--seeds` times: the interval-estimate form of
/// `run`, with `--jobs`/`--progress` since the replicates are a batch.
fn cmd_replicate(opts: &Opts) -> Result<(), String> {
    let plan = abdex::obs::prof::span("plan");
    let experiment = Experiment {
        benchmark: benchmark(opts)?,
        traffic: traffic(opts)?,
        policy: policy(opts)?,
        cycles: number(opts, "cycles", PAPER_RUN_CYCLES)?,
        seed: number(opts, "seed", 42)?,
    };
    let (seeds, level) = replication_opts(opts, 8)?;
    if seeds < 2 {
        return Err("replicate needs --seeds >= 2; use `abdex run` for a single seed".to_owned());
    }
    let pool = runner(opts)?;
    preflight_json(opts)?;
    drop(plan);
    finish_replicated_run(opts, &pool, &experiment, seeds, level)
}

/// Shared tail of `run --seeds K` and `replicate`: execute, render the
/// per-metric table, write the `replicated_run` document.
fn finish_replicated_run(
    opts: &Opts,
    pool: &Runner,
    experiment: &Experiment,
    seeds: u64,
    level: ConfidenceLevel,
) -> Result<(), String> {
    let start = Instant::now();
    let (replicated, series) = if wants_recording(opts) {
        try_replicated_run_recorded(pool, experiment, seeds).map_err(|e| e.to_string())?
    } else {
        let replicated = try_replicated_run(pool, experiment, seeds).map_err(|e| e.to_string())?;
        (replicated, Vec::new())
    };
    emit(
        opts,
        &format!(
            "{} @ {} under {} for {} cycles ({} replicates of seed {}, {} CI)\n{}",
            experiment.benchmark,
            experiment.traffic,
            experiment.policy.spec_string(),
            experiment.cycles,
            seeds,
            experiment.seed,
            level,
            render_replicated_run(&replicated, level),
        ),
    );
    report_cache(pool.cache());
    emit_obs_stats(opts, &series, experiment.cycles, start);
    write_record(opts, "run", &series)?;
    write_json(opts, || replicated_run_json(&replicated, level))
}

fn cmd_sweep(opts: &Opts) -> Result<(), String> {
    // Validate every flag — including the optional spec lists — before
    // preflight_json touches the disk, so a bad option never leaves a
    // stray empty output file.
    let plan = abdex::obs::prof::span("plan");
    let pool = runner(opts)?;
    let bench = benchmark(opts)?;
    let level = traffic(opts)?;
    let cycles = number(opts, "cycles", PAPER_RUN_CYCLES)?;
    let seed = number(opts, "seed", 42)?;
    let (seeds, ci) = replication_opts(opts, 1)?;
    let specs: Option<Vec<PolicySpec>> = opts
        .get("policies")
        .map(|list| spec_list(list, |s| PolicySpec::parse(s).map_err(|e| e.to_string())))
        .transpose()?;
    if specs.as_ref().is_some_and(Vec::is_empty) {
        return Err("--policies needs at least one spec".to_owned());
    }
    let traffics: Option<Vec<TrafficSpec>> = opts
        .get("traffics")
        .map(|list| spec_list(list, parse_traffic))
        .transpose()?;
    if traffics.as_ref().is_some_and(Vec::is_empty) {
        return Err("--traffics needs at least one spec".to_owned());
    }
    if specs.is_some() && traffics.is_some() {
        return Err("pick one sweep axis: --policies or --traffics".to_owned());
    }
    // `--policy` fixes the policy of a traffic sweep and nothing else;
    // `--traffic` fixes the traffic of the policy/TDVS sweeps. Reject
    // the combinations that would be silently ignored.
    if opts.contains_key("policy") && traffics.is_none() {
        return Err(
            "--policy only applies with --traffics; use --policies for a policy sweep".to_owned(),
        );
    }
    if opts.contains_key("traffic") && traffics.is_some() {
        return Err("--traffic does not apply with --traffics (the list is the axis)".to_owned());
    }
    preflight_json(opts)?;
    drop(plan);

    // A `--traffics` list sweeps the traffic axis under one policy.
    if let Some(traffics) = traffics {
        let policy = policy(opts)?;
        if seeds > 1 {
            let (cells, errors) = partition_cells(try_replicated_sweep_traffics(
                &pool, bench, &traffics, &policy, cycles, seed, seeds,
            ));
            emit(opts, &render_replicated_traffic_sweep(&cells, ci));
            let json = write_json(opts, || {
                replicated_traffic_sweep_json(&cells, seeds, ci, &errors)
            });
            return finish_batch(&pool, json, errors);
        }
        let (cells, errors) = partition_cells(try_sweep_traffics(
            &pool, bench, &traffics, &policy, cycles, seed,
        ));
        emit(opts, &render_traffic_sweep(&cells));
        let json = write_json(opts, || traffic_sweep_json(&cells, &errors));
        return finish_batch(&pool, json, errors);
    }

    // A `--policies` list runs a policy-spec sweep instead of the
    // paper's TDVS threshold x window grid.
    if let Some(specs) = specs {
        if seeds > 1 {
            let (cells, errors) = partition_cells(try_replicated_sweep_specs(
                &pool, bench, &level, &specs, cycles, seed, seeds,
            ));
            emit(opts, &render_replicated_spec_sweep(&cells, ci));
            let json = write_json(opts, || {
                replicated_spec_sweep_json(&cells, seeds, ci, &errors)
            });
            return finish_batch(&pool, json, errors);
        }
        let (cells, errors) =
            partition_cells(try_sweep_specs(&pool, bench, &level, &specs, cycles, seed));
        emit(opts, &render_spec_sweep(&cells));
        let json = write_json(opts, || spec_sweep_json(&cells, &errors));
        return finish_batch(&pool, json, errors);
    }

    if seeds > 1 {
        let (cells, errors) = partition_cells(try_replicated_sweep_tdvs(
            &pool,
            bench,
            &level,
            &TdvsGrid::default(),
            cycles,
            seed,
            seeds,
        ));
        emit(opts, &render_replicated_sweep(&cells, ci));
        let json = write_json(opts, || {
            replicated_tdvs_sweep_json(&cells, seeds, ci, &errors)
        });
        return finish_batch(&pool, json, errors);
    }

    let (cells, errors) = partition_cells(try_sweep_tdvs(
        &pool,
        bench,
        &level,
        &TdvsGrid::default(),
        cycles,
        seed,
    ));
    emit(opts, &render_sweep(&cells));
    emit(
        opts,
        &render_surface(&abdex::sweep::power_surface(&cells), "p80 power (W)"),
    );
    emit(
        opts,
        &render_surface(
            &abdex::sweep::throughput_surface(&cells),
            "p80 throughput (Mbps)",
        ),
    );
    for (p, label) in [
        (DesignPriority::Performance, "performance"),
        (DesignPriority::Power, "power"),
    ] {
        if let Some(best) = optimal_tdvs(&cells, p) {
            emit(
                opts,
                &format!(
                    "optimal ({label}): threshold {} Mbps, window {} cycles",
                    best.threshold_mbps, best.window_cycles
                ),
            );
        }
    }
    let json = write_json(opts, || tdvs_sweep_json(&cells, &errors));
    finish_batch(&pool, json, errors)
}

fn cmd_compare(opts: &Opts) -> Result<(), String> {
    let cfg = ComparisonConfig {
        cycles: number(opts, "cycles", PAPER_RUN_CYCLES)?,
        seed: number(opts, "seed", 42)?,
        ..ComparisonConfig::default()
    };
    // The paper's three levels by default; any spec list on demand.
    let traffics: Vec<TrafficSpec> = match opts.get("traffics") {
        None => TrafficSpec::paper_levels().to_vec(),
        Some(list) => {
            let traffics = spec_list(list, parse_traffic)?;
            if traffics.is_empty() {
                return Err("--traffics needs at least one spec".to_owned());
            }
            traffics
        }
    };
    let pool = runner(opts)?;
    let (seeds, ci) = replication_opts(opts, 1)?;
    preflight_json(opts)?;
    if seeds > 1 {
        let (cmp, errors) = try_replicated_compare(&pool, &Benchmark::ALL, &traffics, &cfg, seeds);
        emit(opts, &render_replicated_comparison(&cmp, ci));
        let json = write_json(opts, || replicated_compare_json(&cmp, ci, &errors));
        return finish_batch(&pool, json, errors);
    }
    let (cmp, errors) = try_compare_policies(&pool, &Benchmark::ALL, &traffics, &cfg);
    emit(opts, &render_comparison(&cmp));
    let json = write_json(opts, || comparison_json(&cmp, &errors));
    finish_batch(&pool, json, errors)
}

/// Dispatches the `scenario` command: `run <name|file>` and `list`.
fn cmd_scenario(rest: &[String]) -> Result<(), String> {
    let Some((sub, rest)) = rest.split_first() else {
        return Err("scenario needs a subcommand: `run <name|file>` or `list`".to_owned());
    };
    match sub.as_str() {
        "list" => {
            if let Some(stray) = rest.first() {
                return Err(format!("scenario list takes no arguments, found '{stray}'"));
            }
            cmd_scenario_list();
            Ok(())
        }
        "run" => {
            let Some((target, rest)) = rest.split_first() else {
                return Err(format!(
                    "scenario run needs a <name|file.toml> (builtin: {})",
                    scenario::builtin_names()
                ));
            };
            let opts = parse_opts(rest)?;
            check_opts(
                &opts,
                &[
                    "cycles",
                    "seed",
                    "seeds",
                    "ci",
                    "jobs",
                    "progress",
                    "json",
                    "record",
                    "cache",
                    "no-cache",
                    "cache-dir",
                ],
            )?;
            cmd_scenario_run(target, &opts)
        }
        other => Err(format!(
            "unknown scenario subcommand '{other}' (expected `run` or `list`)"
        )),
    }
}

/// Resolves a scenario target: a built-in name first, then a TOML file
/// path.
fn resolve_scenario(target: &str) -> Result<Scenario, String> {
    if let Some(found) = scenario::builtin(target) {
        return Ok(found);
    }
    if std::path::Path::new(target).exists() {
        return Scenario::load(target);
    }
    Err(format!(
        "unknown scenario '{target}' (builtin: {}; or pass a scenario TOML file path)",
        scenario::builtin_names()
    ))
}

fn cmd_scenario_run(target: &str, opts: &Opts) -> Result<(), String> {
    let plan = abdex::obs::prof::span("plan");
    let mut scenario = resolve_scenario(target)?;
    // CLI flags override the scenario's own run parameters.
    scenario.cycles = number(opts, "cycles", scenario.cycles)?;
    if scenario.cycles == 0 {
        return Err("--cycles must be positive".to_owned());
    }
    scenario.seed = number(opts, "seed", scenario.seed)?;
    let (seeds, ci) = replication_opts(opts, scenario.seeds)?;
    scenario.seeds = seeds;
    let pool = runner(opts)?;
    preflight_json(opts)?;
    drop(plan);
    // The recorded runner is taken only with `--record`, so a plain
    // `scenario run` keeps the exact execution it always had.
    let (run, errors) = if opts.contains_key("record") {
        let (run, errors, recordings) = scenario::try_run_scenario_recorded(&pool, &scenario);
        write_record(
            opts,
            "scenario",
            &scenario_record_series(&scenario, &recordings),
        )?;
        (run, errors)
    } else {
        scenario::try_run_scenario(&pool, &scenario)
    };
    emit(opts, &render_scenario(&run, ci));
    let json = write_json(opts, || scenario_json(&run, ci, &errors));
    finish_batch(&pool, json, errors)
}

fn cmd_scenario_list() {
    println!("built-in scenarios (run with `abdex scenario run <name>`):\n");
    for s in scenario::builtin_scenarios() {
        println!("{:<12} {}", s.name, s.summary);
        println!(
            "    {} on {}, {} policies, {} cycles, {} seed(s)",
            s.traffic.name(),
            s.benchmark,
            s.policies.len(),
            s.cycles,
            s.seeds
        );
        println!("    traffic  {}", s.traffic.spec_string());
        let policies: Vec<String> = s.policies.iter().map(PolicySpec::spec_string).collect();
        println!("    policies {}\n", policies.join(";"));
    }
    println!(
        "a TOML file works too (`abdex scenario run my.toml`); its fields are\n\
         name/summary/benchmark/traffic/policies/cycles/seed/seeds — the same\n\
         shape `scenario::Scenario::to_toml_string` renders."
    );
}

/// Dispatches the `fleet` command: `run`, `dispatchers` and
/// `policies`.
fn cmd_fleet(rest: &[String]) -> Result<(), String> {
    let Some((sub, rest)) = rest.split_first() else {
        return Err(
            "fleet needs a subcommand: `run [OPTIONS]`, `dispatchers` or `policies`".to_owned(),
        );
    };
    match sub.as_str() {
        "run" => {
            let opts = parse_opts(rest)?;
            check_opts(
                &opts,
                &[
                    "chips",
                    "dispatch",
                    "benchmark",
                    "traffic",
                    "policy",
                    "fleet-policy",
                    "cycles",
                    "seed",
                    "seeds",
                    "ci",
                    "jobs",
                    "progress",
                    "json",
                    "record",
                    "cache",
                    "no-cache",
                    "cache-dir",
                ],
            )?;
            cmd_fleet_run(&opts)
        }
        "dispatchers" => {
            if let Some(stray) = rest.first() {
                return Err(format!(
                    "fleet dispatchers takes no arguments, found '{stray}'"
                ));
            }
            cmd_fleet_dispatchers();
            Ok(())
        }
        "policies" => {
            if let Some(stray) = rest.first() {
                return Err(format!(
                    "fleet policies takes no arguments, found '{stray}'"
                ));
            }
            cmd_fleet_policies();
            Ok(())
        }
        other => Err(format!(
            "unknown fleet subcommand '{other}' (expected `run`, `dispatchers` or `policies`)"
        )),
    }
}

fn cmd_fleet_run(opts: &Opts) -> Result<(), String> {
    let plan = abdex::obs::prof::span("plan");
    let mut config = FleetConfig::new(number(opts, "chips", 8)?);
    if config.chips == 0 {
        return Err("--chips needs at least one chip".to_owned());
    }
    if let Some(spec) = opts.get("dispatch") {
        config.dispatch = abdex::DispatchSpec::parse(spec).map_err(|e| e.to_string())?;
    }
    config.benchmark = benchmark(opts)?;
    config.traffic = traffic(opts)?;
    config.policy = policy(opts)?;
    if let Some(spec) = opts.get("fleet-policy") {
        config.fleet_policy = abdex::FleetPolicySpec::parse(spec).map_err(|e| e.to_string())?;
    }
    config.cycles = number(opts, "cycles", config.cycles)?;
    if config.cycles == 0 {
        return Err("--cycles must be positive".to_owned());
    }
    config.seed = number(opts, "seed", config.seed)?;
    let (seeds, ci) = replication_opts(opts, 1)?;
    let pool = runner(opts)?;
    preflight_json(opts)?;
    drop(plan);
    let outcome = run_fleet(&config, seeds as usize, &pool);
    emit(opts, &render_fleet(&outcome.report, ci));
    write_record(opts, "fleet", &fleet_record_series(&outcome))?;
    let json = write_json(opts, || fleet_json(&outcome, ci));
    finish_batch(&pool, json, outcome.errors)
}

/// Dispatches the `cache` command: `stats`, `gc --max-bytes N` and
/// `clear`, all against `--cache-dir` (default `.abdex-cache/`).
fn cmd_cache(rest: &[String]) -> Result<(), String> {
    let Some((sub, rest)) = rest.split_first() else {
        return Err(
            "cache needs a subcommand: `stats`, `gc --max-bytes <N>` or `clear`".to_owned(),
        );
    };
    let opts = parse_opts(rest)?;
    let open = |opts: &Opts| -> Result<abdex::Cache, String> {
        let dir = opts
            .get("cache-dir")
            .map(String::as_str)
            .unwrap_or(abdex::ccache::DEFAULT_DIR);
        abdex::Cache::open(dir)
    };
    match sub.as_str() {
        "stats" => {
            check_opts(&opts, &["cache-dir"])?;
            let cache = open(&opts)?;
            let stats = cache.stats();
            println!("cache dir : {}", cache.root().display());
            println!("epoch     : {}", cache.epoch());
            println!("entries   : {}", stats.entries);
            println!("bytes     : {}", stats.bytes);
            println!("lifetime  : {}", cache.persisted_counters());
            Ok(())
        }
        "gc" => {
            check_opts(&opts, &["cache-dir", "max-bytes"])?;
            if !opts.contains_key("max-bytes") {
                return Err("cache gc needs --max-bytes <N>".to_owned());
            }
            let max_bytes: u64 = number(&opts, "max-bytes", 0)?;
            let cache = open(&opts)?;
            let removed = cache.gc(max_bytes);
            let left = cache.stats();
            println!(
                "evicted {} entries ({} bytes); {} entries ({} bytes) remain",
                removed.entries, removed.bytes, left.entries, left.bytes
            );
            Ok(())
        }
        "clear" => {
            check_opts(&opts, &["cache-dir"])?;
            let cache = open(&opts)?;
            let removed = cache.clear();
            println!("removed {removed} entries");
            Ok(())
        }
        other => Err(format!(
            "unknown cache subcommand '{other}' (expected `stats`, `gc` or `clear`)"
        )),
    }
}

/// Dispatches the `obs` command: `summarize <record.jsonl>`.
fn cmd_obs(rest: &[String]) -> Result<(), String> {
    let Some((sub, rest)) = rest.split_first() else {
        return Err("obs needs a subcommand: `summarize <record.jsonl>`".to_owned());
    };
    match sub.as_str() {
        "summarize" => {
            let Some((path, flags)) = rest.split_first() else {
                return Err(
                    "obs summarize needs a recording: `abdex obs summarize <record.jsonl> \
                     [--json FILE|-] [--jobs N]`"
                        .to_owned(),
                );
            };
            if path.starts_with("--") {
                return Err(format!(
                    "obs summarize takes the record file first, found flag '{path}'"
                ));
            }
            let opts = parse_opts(flags)?;
            check_opts(&opts, &["json", "jobs", "progress"])?;
            cmd_obs_summarize(path, &opts)
        }
        other => Err(format!(
            "unknown obs subcommand '{other}' (expected `summarize`)"
        )),
    }
}

/// `obs summarize`: fold a `--record` JSONL export back into
/// per-channel statistics (table and/or `obs_summary` JSON document).
fn cmd_obs_summarize(path: &str, opts: &Opts) -> Result<(), String> {
    preflight_json(opts)?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let pool = runner(opts)?;
    let summary =
        abdex::summarize::summarize_record(&text, &pool).map_err(|e| format!("{path}: {e}"))?;
    emit(opts, abdex::summarize::render_summary(&summary).trim_end());
    write_json(opts, || abdex::summarize::render_summary_json(&summary))
}

fn cmd_fleet_dispatchers() {
    let registry = DispatchRegistry::builtin();
    println!("registered dispatchers (spec grammar: name[:key=val,...]):\n");
    for info in registry.infos() {
        let aliases = if info.aliases.is_empty() {
            String::new()
        } else {
            format!(" (aliases: {})", info.aliases.join(", "))
        };
        println!("{:<14} {}{}", info.name, info.summary, aliases);
        for p in info.params {
            println!("    {:<12} [{}] {}", p.key, p.default, p.help);
        }
        println!();
    }
}

fn cmd_fleet_policies() {
    let registry = FleetPolicyRegistry::builtin();
    println!("registered fleet policies (spec grammar: name[:key=val,...]):\n");
    for info in registry.infos() {
        let aliases = if info.aliases.is_empty() {
            String::new()
        } else {
            format!(" (aliases: {})", info.aliases.join(", "))
        };
        println!("{:<14} {}{}", info.name, info.summary, aliases);
        for p in info.params {
            println!("    {:<12} [{}] {}", p.key, p.default, p.help);
        }
        println!();
    }
}

fn cmd_policies() -> Result<(), String> {
    let registry = PolicyRegistry::builtin();
    println!("registered DVS policies (spec grammar: name[:key=val,...]):\n");
    for info in registry.infos() {
        let aliases = if info.aliases.is_empty() {
            String::new()
        } else {
            format!(" (aliases: {})", info.aliases.join(", "))
        };
        println!(
            "{:<14} {:<6} {}{}",
            info.name,
            info.kind.to_string(),
            info.summary,
            aliases
        );
        for p in info.params {
            println!("    {:<12} [{}] {}", p.key, p.default, p.help);
        }
        println!();
    }
    Ok(())
}

fn cmd_traffics() -> Result<(), String> {
    let registry = TrafficRegistry::builtin();
    println!("registered traffic models (spec grammar: name[:key=val,...]):\n");
    for info in registry.infos() {
        let aliases = if info.aliases.is_empty() {
            String::new()
        } else {
            format!(" (aliases: {})", info.aliases.join(", "))
        };
        println!("{:<14} {}{}", info.name, info.summary, aliases);
        for p in info.params {
            println!("    {:<12} [{}] {}", p.key, p.default, p.help);
        }
        println!();
    }
    Ok(())
}

/// `trace` grew positional subcommands (`generate`, `analyze`) around
/// the original flag-only LOC-event form; a leading flag (or nothing)
/// keeps the legacy behaviour byte-for-byte.
fn cmd_trace_dispatch(rest: &[String]) -> Result<(), String> {
    match rest.first().map(String::as_str) {
        Some("generate") => {
            // `-o` is the conventional shorthand for `--out`.
            let args: Vec<String> = rest[1..]
                .iter()
                .map(|a| {
                    if a == "-o" {
                        "--out".to_owned()
                    } else {
                        a.clone()
                    }
                })
                .collect();
            let opts = parse_opts(&args)?;
            check_opts(&opts, &["traffic", "cycles", "seed", "out"])?;
            cmd_trace_generate(&opts)
        }
        Some("analyze") => {
            let Some((path, flags)) = rest[1..].split_first() else {
                return Err(
                    "trace analyze needs a trace file: `abdex trace analyze <file> \
                     [--json FILE|-] [--jobs N]`"
                        .to_owned(),
                );
            };
            if path.starts_with("--") {
                return Err(format!(
                    "trace analyze takes the trace file first, found flag '{path}'"
                ));
            }
            let opts = parse_opts(flags)?;
            check_opts(&opts, &["json", "jobs", "progress"])?;
            cmd_trace_analyze(path, &opts)
        }
        None => cmd_trace(&Opts::new()),
        Some(flag) if flag.starts_with("--") => {
            let opts = parse_opts(rest)?;
            check_opts(&opts, &["benchmark", "traffic", "cycles", "seed", "out"])?;
            cmd_trace(&opts)
        }
        Some(other) => Err(format!(
            "unknown trace subcommand '{other}' (expected `generate`, `analyze`, \
             or the legacy flag form `abdex trace --benchmark ...`)"
        )),
    }
}

/// `trace generate`: materialise a traffic spec into a replayable
/// recorded-trace file.
fn cmd_trace_generate(opts: &Opts) -> Result<(), String> {
    let spec = traffic(opts)?;
    let cycles: u64 = number(opts, "cycles", 1_000_000)?;
    let seed: u64 = number(opts, "seed", 42)?;
    let (trace, text) = generate_trace(&spec, cycles, seed)?;
    match opts.get("out") {
        Some(path) => {
            std::fs::write(path, &text).map_err(|e| format!("cannot write {path}: {e}"))?;
            println!(
                "recorded {} packets of `{}` (seed {seed}, {cycles} cycles) to {path}",
                trace.len(),
                spec.spec_string()
            );
        }
        None => print!("{text}"),
    }
    Ok(())
}

/// `trace analyze`: characterise a recorded trace file (table and/or
/// `trace_analysis` JSON document).
fn cmd_trace_analyze(path: &str, opts: &Opts) -> Result<(), String> {
    preflight_json(opts)?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let trace = RecordedTrace::from_text(&text).map_err(|e| format!("{path}: {e}"))?;
    let runner = runner(opts)?;
    let analysis =
        analyze_trace(&trace, &runner).with_provenance(abdex::traceio::parse_provenance(&text));
    emit(opts, &render_trace_analysis(path, &analysis));
    write_json(opts, || trace_analysis_json(path, &analysis))
}

fn cmd_trace(opts: &Opts) -> Result<(), String> {
    let config = NpuConfig::builder()
        .benchmark(benchmark(opts)?)
        .seed(number(opts, "seed", 42)?)
        .traffic(traffic(opts)?)
        .trace(TraceConfig {
            emit_fifo: true,
            emit_pipeline: false,
        })
        .build();
    let mut sim = Simulator::new(config);
    let _ = sim.run_cycles(number(opts, "cycles", 1_000_000)?);
    let text = sim.into_trace().to_text();
    match opts.get("out") {
        Some(path) => {
            std::fs::write(path, &text).map_err(|e| format!("cannot write {path}: {e}"))?;
            println!("wrote {} bytes to {path}", text.len());
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn load_trace(opts: &Opts) -> Result<Trace, String> {
    let path = opts
        .get("trace")
        .ok_or_else(|| "--trace <file> is required".to_owned())?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Trace::from_text(&text)
}

fn formula(opts: &Opts) -> Result<loc::Formula, String> {
    let text = opts
        .get("formula")
        .ok_or_else(|| "--formula <text> is required".to_owned())?;
    parse(text).map_err(|e| e.to_string())
}

fn cmd_check(opts: &Opts) -> Result<(), String> {
    let formula = formula(opts)?;
    let trace = load_trace(opts)?;
    let report = Checker::from_formula(&formula)
        .map_err(|e| e.to_string())?
        .check(&trace);
    println!("formula    : {formula}");
    println!("instances  : {}", report.instances);
    println!("violations : {}", report.violation_count);
    if report.passed() {
        println!("PASS");
        Ok(())
    } else {
        for v in report.violations.iter().take(10) {
            println!("  violated at i = {}", v.index);
        }
        Err("assertion violated".to_owned())
    }
}

fn cmd_analyze(opts: &Opts) -> Result<(), String> {
    let formula = formula(opts)?;
    let trace = load_trace(opts)?;
    let report = Analyzer::from_formula(&formula)
        .map_err(|e| e.to_string())?
        .analyze(&trace);
    println!("formula   : {formula}");
    println!("instances : {}", report.total_instances());
    print!("{}", report.to_table());
    Ok(())
}

fn cmd_codegen(opts: &Opts) -> Result<(), String> {
    let formula = formula(opts)?;
    print!("{}", loc::codegen::generate(&formula));
    Ok(())
}
