//! Policy comparison across benchmarks and traffic levels (paper §4.3,
//! Fig. 11).

use dvs::{EdvsConfig, PolicyKind, TdvsConfig};
use nepsim::{Benchmark, PolicyConfig};
use serde::{Deserialize, Serialize};
use traffic::TrafficLevel;

use crate::experiment::{Experiment, ExperimentResult};

/// One row of the Fig. 11 grid: a benchmark × traffic level × policy
/// combination with its measured result.
#[derive(Debug, Clone)]
pub struct ComparisonRow {
    /// Benchmark application.
    pub benchmark: Benchmark,
    /// Traffic level.
    pub traffic: TrafficLevel,
    /// Policy family that ran.
    pub policy: PolicyKind,
    /// The evaluated experiment.
    pub result: ExperimentResult,
}

/// The full Fig. 11 comparison: every benchmark × traffic level, each run
/// under noDVS, TDVS and EDVS.
#[derive(Debug, Clone)]
pub struct PolicyComparison {
    /// All rows, ordered benchmark-major, then traffic, then policy in
    /// `[NoDvs, Tdvs, Edvs]` order.
    pub rows: Vec<ComparisonRow>,
}

/// The optimal configurations found by the §4.1/§4.2 sweeps, used as the
/// fixed policy parameters of the §4.3 comparison.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComparisonConfig {
    /// TDVS parameters (the paper's power-priority pick: 1400 Mbps, 40 k).
    pub tdvs: TdvsConfig,
    /// EDVS parameters (10 % idle threshold, 40 k window).
    pub edvs: EdvsConfig,
    /// Run length per cell, base-clock cycles.
    pub cycles: u64,
    /// Experiment seed.
    pub seed: u64,
}

impl Default for ComparisonConfig {
    fn default() -> Self {
        ComparisonConfig {
            tdvs: TdvsConfig {
                top_threshold_mbps: 1400.0,
                window_cycles: 40_000,
            },
            edvs: EdvsConfig::default(),
            cycles: crate::experiment::PAPER_RUN_CYCLES,
            seed: 42,
        }
    }
}

/// Runs the Fig. 11 grid: `benchmarks × levels × {noDVS, TDVS, EDVS}`.
///
/// # Example
///
/// ```
/// use abdex::compare::{compare_policies, ComparisonConfig};
/// use abdex::nepsim::Benchmark;
/// use abdex::traffic::TrafficLevel;
///
/// let cfg = ComparisonConfig { cycles: 150_000, ..ComparisonConfig::default() };
/// let cmp = compare_policies(&[Benchmark::Nat], &[TrafficLevel::Low], &cfg);
/// assert_eq!(cmp.rows.len(), 3); // one per policy
/// ```
#[must_use]
pub fn compare_policies(
    benchmarks: &[Benchmark],
    levels: &[TrafficLevel],
    config: &ComparisonConfig,
) -> PolicyComparison {
    let mut rows = Vec::new();
    for &benchmark in benchmarks {
        for &traffic in levels {
            for policy in [
                PolicyConfig::NoDvs,
                PolicyConfig::Tdvs(config.tdvs),
                PolicyConfig::Edvs(config.edvs),
            ] {
                let kind = policy.kind();
                let result = Experiment {
                    benchmark,
                    traffic,
                    policy,
                    cycles: config.cycles,
                    seed: config.seed,
                }
                .run();
                rows.push(ComparisonRow {
                    benchmark,
                    traffic,
                    policy: kind,
                    result,
                });
            }
        }
    }
    PolicyComparison { rows }
}

impl PolicyComparison {
    /// Finds the row for an exact combination.
    #[must_use]
    pub fn row(
        &self,
        benchmark: Benchmark,
        traffic: TrafficLevel,
        policy: PolicyKind,
    ) -> Option<&ComparisonRow> {
        self.rows
            .iter()
            .find(|r| r.benchmark == benchmark && r.traffic == traffic && r.policy == policy)
    }

    /// Power saving of `policy` relative to the noDVS baseline for a
    /// combination, as a fraction of baseline mean power. `None` when
    /// either row is missing.
    #[must_use]
    pub fn power_saving(
        &self,
        benchmark: Benchmark,
        traffic: TrafficLevel,
        policy: PolicyKind,
    ) -> Option<f64> {
        let base = self.row(benchmark, traffic, PolicyKind::NoDvs)?;
        let with = self.row(benchmark, traffic, policy)?;
        let b = base.result.sim.mean_power_w();
        let w = with.result.sim.mean_power_w();
        (b > 0.0).then(|| (b - w) / b)
    }

    /// Throughput loss of `policy` relative to noDVS, as a fraction of the
    /// baseline throughput. `None` when either row is missing.
    #[must_use]
    pub fn throughput_loss(
        &self,
        benchmark: Benchmark,
        traffic: TrafficLevel,
        policy: PolicyKind,
    ) -> Option<f64> {
        let base = self.row(benchmark, traffic, PolicyKind::NoDvs)?;
        let with = self.row(benchmark, traffic, policy)?;
        let b = base.result.sim.throughput_mbps();
        let w = with.result.sim.throughput_mbps();
        (b > 0.0).then(|| (b - w) / b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cmp(benchmarks: &[Benchmark], levels: &[TrafficLevel]) -> PolicyComparison {
        let cfg = ComparisonConfig {
            cycles: 1_200_000,
            ..ComparisonConfig::default()
        };
        compare_policies(benchmarks, levels, &cfg)
    }

    #[test]
    fn grid_has_all_rows() {
        let cmp = quick_cmp(
            &[Benchmark::Ipfwdr, Benchmark::Nat],
            &[TrafficLevel::Low, TrafficLevel::High],
        );
        assert_eq!(cmp.rows.len(), 2 * 2 * 3);
        for kind in [PolicyKind::NoDvs, PolicyKind::Tdvs, PolicyKind::Edvs] {
            assert!(cmp.row(Benchmark::Nat, TrafficLevel::Low, kind).is_some());
        }
    }

    #[test]
    fn nat_gets_no_edvs_savings() {
        // Paper §4.3: "nat shows no power savings from EDVS under every
        // traffic pattern".
        let cmp = quick_cmp(&[Benchmark::Nat], &[TrafficLevel::High]);
        let saving = cmp
            .power_saving(Benchmark::Nat, TrafficLevel::High, PolicyKind::Edvs)
            .unwrap();
        assert!(saving < 0.03, "nat EDVS saving {saving:.3}");
    }

    #[test]
    fn ipfwdr_gets_edvs_savings_at_high_traffic() {
        let cmp = quick_cmp(&[Benchmark::Ipfwdr], &[TrafficLevel::High]);
        let saving = cmp
            .power_saving(Benchmark::Ipfwdr, TrafficLevel::High, PolicyKind::Edvs)
            .unwrap();
        assert!(saving > 0.05, "ipfwdr EDVS saving only {saving:.3}");
    }

    #[test]
    fn tdvs_saves_more_at_low_traffic() {
        // Paper §4.3: TDVS's savings shrink as traffic rises.
        let cmp = quick_cmp(&[Benchmark::Ipfwdr], &[TrafficLevel::Low, TrafficLevel::High]);
        let low = cmp
            .power_saving(Benchmark::Ipfwdr, TrafficLevel::Low, PolicyKind::Tdvs)
            .unwrap();
        let high = cmp
            .power_saving(Benchmark::Ipfwdr, TrafficLevel::High, PolicyKind::Tdvs)
            .unwrap();
        assert!(low > high, "low-traffic saving {low:.3} !> high {high:.3}");
    }

    #[test]
    fn missing_rows_return_none() {
        let cmp = quick_cmp(&[Benchmark::Nat], &[TrafficLevel::Low]);
        assert!(cmp.row(Benchmark::Md4, TrafficLevel::Low, PolicyKind::NoDvs).is_none());
        assert!(cmp
            .power_saving(Benchmark::Md4, TrafficLevel::Low, PolicyKind::Tdvs)
            .is_none());
    }
}
