//! Policy comparison across benchmarks and traffic specs (paper §4.3,
//! Fig. 11), extended with every other registered policy family — and,
//! through [`TrafficSpec`], with any registered traffic model on the
//! traffic axis.

use dvs::{
    CombinedConfig, EdvsConfig, PolicyKind, ProportionalConfig, QueueAwareConfig, TdvsConfig,
};
use nepsim::{Benchmark, PolicySpec};
use serde::{Deserialize, Serialize};
use traffic::TrafficSpec;
use xrun::{JobError, Runner};

use crate::experiment::{run_experiments, Experiment, ExperimentResult};

/// One row of the Fig. 11 grid: a benchmark × traffic level × policy
/// combination with its measured result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ComparisonRow {
    /// Benchmark application.
    pub benchmark: Benchmark,
    /// Traffic-model spec.
    pub traffic: TrafficSpec,
    /// Policy family that ran.
    pub policy: PolicyKind,
    /// The evaluated experiment.
    pub result: ExperimentResult,
}

/// The full comparison grid: every benchmark × traffic level, each run
/// under every compared policy family.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PolicyComparison {
    /// All rows, ordered benchmark-major, then traffic, then policy in
    /// [`ComparisonConfig::policies`] order.
    pub rows: Vec<ComparisonRow>,
}

/// The fixed policy parameters of the §4.3 comparison: the optima found
/// by the §4.1/§4.2 sweeps for the paper's policies, defaults for the
/// extension policies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComparisonConfig {
    /// TDVS parameters (the paper's power-priority pick: 1400 Mbps, 40 k).
    pub tdvs: TdvsConfig,
    /// EDVS parameters (10 % idle threshold, 40 k window).
    pub edvs: EdvsConfig,
    /// TEDVS parameters (the conservative composition of the above).
    pub combined: CombinedConfig,
    /// Queue-aware parameters (FIFO watermarks).
    pub queue: QueueAwareConfig,
    /// Proportional-controller parameters (PI gains).
    pub proportional: ProportionalConfig,
    /// Run length per cell, base-clock cycles.
    pub cycles: u64,
    /// Experiment seed.
    pub seed: u64,
}

impl Default for ComparisonConfig {
    fn default() -> Self {
        let tdvs = TdvsConfig {
            top_threshold_mbps: 1400.0,
            window_cycles: 40_000,
        };
        let edvs = EdvsConfig::default();
        ComparisonConfig {
            tdvs,
            edvs,
            combined: CombinedConfig { tdvs, edvs },
            queue: QueueAwareConfig::default(),
            proportional: ProportionalConfig::default(),
            cycles: crate::experiment::PAPER_RUN_CYCLES,
            seed: 42,
        }
    }
}

impl ComparisonConfig {
    /// The specs every grid cell is run under, in row order: the paper's
    /// three (noDVS, TDVS, EDVS) followed by the extension policies
    /// (TEDVS, QDVS, PDVS).
    #[must_use]
    pub fn policies(&self) -> Vec<PolicySpec> {
        vec![
            PolicySpec::NoDvs,
            PolicySpec::Tdvs(self.tdvs),
            PolicySpec::Edvs(self.edvs),
            PolicySpec::Combined(self.combined),
            PolicySpec::QueueAware(self.queue),
            PolicySpec::Proportional(self.proportional),
        ]
    }
}

/// Runs the comparison grid: `benchmarks × levels ×` every policy of
/// [`ComparisonConfig::policies`].
///
/// # Example
///
/// ```
/// use abdex::compare::{compare_policies, ComparisonConfig};
/// use abdex::nepsim::Benchmark;
/// use abdex::traffic::TrafficLevel;
///
/// let cfg = ComparisonConfig { cycles: 150_000, ..ComparisonConfig::default() };
/// let cmp = compare_policies(&[Benchmark::Nat], &[TrafficLevel::Low.into()], &cfg);
/// assert_eq!(cmp.rows.len(), 6); // one per policy family
/// ```
#[must_use]
pub fn compare_policies(
    benchmarks: &[Benchmark],
    traffics: &[TrafficSpec],
    config: &ComparisonConfig,
) -> PolicyComparison {
    let (cmp, errors) = try_compare_policies(&Runner::new(), benchmarks, traffics, config);
    crate::experiment::assert_no_failures(&errors);
    cmp
}

/// Runs the comparison grid on the given [`Runner`]: the fallible form
/// of [`compare_policies`].
///
/// Returns the comparison built from every cell that completed plus one
/// [`JobError`] per cell that panicked — the batch always runs to the
/// end, so a failing policy costs only its own rows.
#[must_use]
pub fn try_compare_policies(
    runner: &Runner,
    benchmarks: &[Benchmark],
    traffics: &[TrafficSpec],
    config: &ComparisonConfig,
) -> (PolicyComparison, Vec<JobError>) {
    let (keys, experiments) = comparison_experiments(benchmarks, traffics, config);
    let mut rows = Vec::with_capacity(keys.len());
    let mut errors = Vec::new();
    for (outcome, (benchmark, traffic, kind)) in
        run_experiments(runner, experiments).into_iter().zip(keys)
    {
        match outcome {
            Ok(result) => rows.push(ComparisonRow {
                benchmark,
                traffic,
                policy: kind,
                result,
            }),
            Err(e) => errors.push(e),
        }
    }
    (PolicyComparison { rows }, errors)
}

/// The comparison grid in row order — `(benchmark, traffic, policy
/// kind)` keys and the experiment each key runs. Shared by the plain
/// and the replicated comparison so their grids can never drift apart.
pub(crate) type ComparisonKey = (Benchmark, TrafficSpec, PolicyKind);

pub(crate) fn comparison_experiments(
    benchmarks: &[Benchmark],
    traffics: &[TrafficSpec],
    config: &ComparisonConfig,
) -> (Vec<ComparisonKey>, Vec<Experiment>) {
    let mut keys = Vec::new();
    let mut experiments = Vec::new();
    for &benchmark in benchmarks {
        for traffic in traffics {
            for policy in config.policies() {
                keys.push((benchmark, traffic.clone(), policy.kind()));
                experiments.push(Experiment {
                    benchmark,
                    traffic: traffic.clone(),
                    policy,
                    cycles: config.cycles,
                    seed: config.seed,
                });
            }
        }
    }
    (keys, experiments)
}

impl PolicyComparison {
    /// Finds the row for an exact combination.
    #[must_use]
    pub fn row(
        &self,
        benchmark: Benchmark,
        traffic: &TrafficSpec,
        policy: PolicyKind,
    ) -> Option<&ComparisonRow> {
        self.rows
            .iter()
            .find(|r| r.benchmark == benchmark && &r.traffic == traffic && r.policy == policy)
    }

    /// Power saving of `policy` relative to the noDVS baseline for a
    /// combination, as a fraction of baseline mean power. `None` when
    /// either row is missing.
    #[must_use]
    pub fn power_saving(
        &self,
        benchmark: Benchmark,
        traffic: &TrafficSpec,
        policy: PolicyKind,
    ) -> Option<f64> {
        let base = self.row(benchmark, traffic, PolicyKind::NoDvs)?;
        let with = self.row(benchmark, traffic, policy)?;
        let b = base.result.sim.mean_power_w();
        let w = with.result.sim.mean_power_w();
        (b > 0.0).then(|| (b - w) / b)
    }

    /// Throughput loss of `policy` relative to noDVS, as a fraction of the
    /// baseline throughput. `None` when either row is missing.
    #[must_use]
    pub fn throughput_loss(
        &self,
        benchmark: Benchmark,
        traffic: &TrafficSpec,
        policy: PolicyKind,
    ) -> Option<f64> {
        let base = self.row(benchmark, traffic, PolicyKind::NoDvs)?;
        let with = self.row(benchmark, traffic, policy)?;
        let b = base.result.sim.throughput_mbps();
        let w = with.result.sim.throughput_mbps();
        (b > 0.0).then(|| (b - w) / b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traffic::TrafficLevel;

    fn spec(level: TrafficLevel) -> TrafficSpec {
        TrafficSpec::Level(level)
    }

    fn quick_cmp(benchmarks: &[Benchmark], levels: &[TrafficLevel]) -> PolicyComparison {
        let cfg = ComparisonConfig {
            cycles: 1_200_000,
            ..ComparisonConfig::default()
        };
        let traffics: Vec<TrafficSpec> = levels.iter().copied().map(spec).collect();
        compare_policies(benchmarks, &traffics, &cfg)
    }

    #[test]
    fn grid_has_all_rows() {
        let cmp = quick_cmp(
            &[Benchmark::Ipfwdr, Benchmark::Nat],
            &[TrafficLevel::Low, TrafficLevel::High],
        );
        assert_eq!(cmp.rows.len(), 2 * 2 * 6);
        for kind in [
            PolicyKind::NoDvs,
            PolicyKind::Tdvs,
            PolicyKind::Edvs,
            PolicyKind::Combined,
            PolicyKind::QueueAware,
            PolicyKind::Proportional,
        ] {
            assert!(
                cmp.row(Benchmark::Nat, &spec(TrafficLevel::Low), kind)
                    .is_some(),
                "missing {kind} row"
            );
        }
    }

    #[test]
    fn extension_policies_behave_sanely_at_low_traffic() {
        let cmp = quick_cmp(&[Benchmark::Ipfwdr], &[TrafficLevel::Low]);
        // The queue-aware policy sees a near-empty FIFO under light load
        // and must save power against the baseline.
        let qdvs = cmp
            .power_saving(
                Benchmark::Ipfwdr,
                &spec(TrafficLevel::Low),
                PolicyKind::QueueAware,
            )
            .unwrap();
        assert!(qdvs > 0.05, "QDVS saving only {qdvs:.3}");
        // The PI controller may not beat the baseline everywhere, but it
        // must never *cost* power: its floor is the pinned top level.
        let pdvs = cmp
            .power_saving(
                Benchmark::Ipfwdr,
                &spec(TrafficLevel::Low),
                PolicyKind::Proportional,
            )
            .unwrap();
        assert!(pdvs > -0.01, "PDVS made things worse: {pdvs:.3}");
    }

    #[test]
    fn nat_gets_no_edvs_savings() {
        // Paper §4.3: "nat shows no power savings from EDVS under every
        // traffic pattern".
        let cmp = quick_cmp(&[Benchmark::Nat], &[TrafficLevel::High]);
        let saving = cmp
            .power_saving(Benchmark::Nat, &spec(TrafficLevel::High), PolicyKind::Edvs)
            .unwrap();
        assert!(saving < 0.03, "nat EDVS saving {saving:.3}");
    }

    #[test]
    fn ipfwdr_gets_edvs_savings_at_high_traffic() {
        let cmp = quick_cmp(&[Benchmark::Ipfwdr], &[TrafficLevel::High]);
        let saving = cmp
            .power_saving(
                Benchmark::Ipfwdr,
                &spec(TrafficLevel::High),
                PolicyKind::Edvs,
            )
            .unwrap();
        assert!(saving > 0.05, "ipfwdr EDVS saving only {saving:.3}");
    }

    #[test]
    fn tdvs_saves_more_at_low_traffic() {
        // Paper §4.3: TDVS's savings shrink as traffic rises.
        let cmp = quick_cmp(
            &[Benchmark::Ipfwdr],
            &[TrafficLevel::Low, TrafficLevel::High],
        );
        let low = cmp
            .power_saving(
                Benchmark::Ipfwdr,
                &spec(TrafficLevel::Low),
                PolicyKind::Tdvs,
            )
            .unwrap();
        let high = cmp
            .power_saving(
                Benchmark::Ipfwdr,
                &spec(TrafficLevel::High),
                PolicyKind::Tdvs,
            )
            .unwrap();
        assert!(low > high, "low-traffic saving {low:.3} !> high {high:.3}");
    }

    #[test]
    fn missing_rows_return_none() {
        let cmp = quick_cmp(&[Benchmark::Nat], &[TrafficLevel::Low]);
        assert!(cmp
            .row(Benchmark::Md4, &spec(TrafficLevel::Low), PolicyKind::NoDvs)
            .is_none());
        assert!(cmp
            .power_saving(Benchmark::Md4, &spec(TrafficLevel::Low), PolicyKind::Tdvs)
            .is_none());
    }
}
