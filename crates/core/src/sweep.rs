//! Design-space sweeps: the paper's TDVS threshold × window grid
//! (§4.1, Figures 6–9) plus the two open axes — arbitrary
//! [`PolicySpec`] sweeps and arbitrary [`TrafficSpec`] sweeps. Any list
//! of spec strings becomes a sweep table.

use dvs::TdvsConfig;
use nepsim::{Benchmark, PolicySpec};
use serde::{Deserialize, Serialize};
use traffic::TrafficSpec;
use xrun::{JobError, Runner};

use crate::experiment::{expect_cells, run_experiments, Experiment, ExperimentResult};

/// The grid of TDVS parameters to explore.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TdvsGrid {
    /// Top traffic thresholds (Mbps) — the paper compares 800, 1000,
    /// 1200 and 1400 for `ipfwdr`.
    pub thresholds_mbps: Vec<f64>,
    /// Monitor window sizes in base-clock cycles — the paper compares
    /// 20 k to 80 k.
    pub windows_cycles: Vec<u64>,
}

impl Default for TdvsGrid {
    /// The exact grid of paper Figures 6–9.
    fn default() -> Self {
        TdvsGrid {
            thresholds_mbps: vec![800.0, 1000.0, 1200.0, 1400.0],
            windows_cycles: vec![20_000, 40_000, 60_000, 80_000],
        }
    }
}

impl TdvsGrid {
    /// Number of grid cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.thresholds_mbps.len() * self.windows_cycles.len()
    }

    /// `true` when either axis is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.thresholds_mbps.is_empty() || self.windows_cycles.is_empty()
    }
}

/// One evaluated cell of a TDVS sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GridCell {
    /// The top threshold of this cell, Mbps.
    pub threshold_mbps: f64,
    /// The window size of this cell, cycles.
    pub window_cycles: u64,
    /// The evaluated experiment.
    pub result: ExperimentResult,
}

/// Runs a full TDVS sweep: one simulation per `(threshold, window)` cell,
/// all with the same benchmark, traffic, run length and seed.
///
/// The paper runs this for `ipfwdr` at 8×10⁶ cycles per cell; pass a
/// smaller `cycles` for quick exploration.
///
/// # Example
///
/// ```
/// use abdex::{sweep_tdvs, TdvsGrid};
/// use abdex::nepsim::Benchmark;
/// use abdex::traffic::TrafficLevel;
///
/// let grid = TdvsGrid {
///     thresholds_mbps: vec![1000.0],
///     windows_cycles: vec![40_000],
/// };
/// let cells = sweep_tdvs(Benchmark::Ipfwdr, &TrafficLevel::High.into(), &grid, 200_000, 1);
/// assert_eq!(cells.len(), 1);
/// ```
#[must_use]
pub fn sweep_tdvs(
    benchmark: Benchmark,
    traffic: &TrafficSpec,
    grid: &TdvsGrid,
    cycles: u64,
    seed: u64,
) -> Vec<GridCell> {
    expect_cells(try_sweep_tdvs(
        &Runner::new(),
        benchmark,
        traffic,
        grid,
        cycles,
        seed,
    ))
}

/// Runs a TDVS sweep on the given [`Runner`], one outcome per cell in
/// grid order: the fallible form of [`sweep_tdvs`], where a panicking
/// cell yields its own error while the rest of the grid completes.
#[must_use]
pub fn try_sweep_tdvs(
    runner: &Runner,
    benchmark: Benchmark,
    traffic: &TrafficSpec,
    grid: &TdvsGrid,
    cycles: u64,
    seed: u64,
) -> Vec<Result<GridCell, JobError>> {
    let (params, experiments) = tdvs_experiments(benchmark, traffic, grid, cycles, seed);
    let outcomes = run_experiments(runner, experiments);
    let _prof = obs::prof::span("fold");
    outcomes
        .into_iter()
        .zip(params)
        .map(|(outcome, (threshold_mbps, window_cycles))| {
            outcome.map(|result| GridCell {
                threshold_mbps,
                window_cycles,
                result,
            })
        })
        .collect()
}

/// The TDVS grid in sweep order, as the `(threshold, window)` keys and
/// the experiment each key runs — the single construction point both
/// the plain and the replicated sweep share, so their grids can never
/// drift apart.
pub(crate) fn tdvs_experiments(
    benchmark: Benchmark,
    traffic: &TrafficSpec,
    grid: &TdvsGrid,
    cycles: u64,
    seed: u64,
) -> (Vec<(f64, u64)>, Vec<Experiment>) {
    let params: Vec<(f64, u64)> = grid
        .thresholds_mbps
        .iter()
        .flat_map(|&t| grid.windows_cycles.iter().map(move |&w| (t, w)))
        .collect();
    let experiments = params
        .iter()
        .map(|&(threshold, window)| Experiment {
            benchmark,
            traffic: traffic.clone(),
            policy: PolicySpec::Tdvs(TdvsConfig {
                top_threshold_mbps: threshold,
                window_cycles: window,
            }),
            cycles,
            seed,
        })
        .collect();
    (params, experiments)
}

/// One evaluated cell of a policy-spec sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpecCell {
    /// The spec this cell ran (its [`PolicySpec::spec_string`] labels the
    /// sweep-table row).
    pub spec: PolicySpec,
    /// The evaluated experiment.
    pub result: ExperimentResult,
}

/// Runs one simulation per policy spec — the open-ended counterpart of
/// [`sweep_tdvs`], covering every registered policy (and every parameter
/// combination expressible as a spec).
///
/// # Example
///
/// ```
/// use abdex::{sweep_specs, PolicySpec};
/// use abdex::nepsim::Benchmark;
/// use abdex::traffic::TrafficLevel;
///
/// let specs: Vec<PolicySpec> = ["nodvs", "queue:high=0.9", "proportional"]
///     .iter()
///     .map(|s| s.parse().unwrap())
///     .collect();
/// let cells = sweep_specs(Benchmark::Ipfwdr, &TrafficLevel::High.into(), &specs, 200_000, 1);
/// assert_eq!(cells.len(), 3);
/// ```
#[must_use]
pub fn sweep_specs(
    benchmark: Benchmark,
    traffic: &TrafficSpec,
    specs: &[PolicySpec],
    cycles: u64,
    seed: u64,
) -> Vec<SpecCell> {
    expect_cells(try_sweep_specs(
        &Runner::new(),
        benchmark,
        traffic,
        specs,
        cycles,
        seed,
    ))
}

/// Runs a policy-spec sweep on the given [`Runner`], one outcome per
/// spec in list order: the fallible form of [`sweep_specs`].
#[must_use]
pub fn try_sweep_specs(
    runner: &Runner,
    benchmark: Benchmark,
    traffic: &TrafficSpec,
    specs: &[PolicySpec],
    cycles: u64,
    seed: u64,
) -> Vec<Result<SpecCell, JobError>> {
    let experiments = specs
        .iter()
        .map(|spec| Experiment {
            benchmark,
            traffic: traffic.clone(),
            policy: spec.clone(),
            cycles,
            seed,
        })
        .collect();
    let outcomes = run_experiments(runner, experiments);
    let _prof = obs::prof::span("fold");
    outcomes
        .into_iter()
        .zip(specs)
        .map(|(outcome, spec)| {
            outcome.map(|result| SpecCell {
                spec: spec.clone(),
                result,
            })
        })
        .collect()
}

/// One evaluated cell of a traffic-model sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrafficCell {
    /// The traffic spec this cell ran (its
    /// [`TrafficSpec::spec_string`] labels the sweep-table row).
    pub spec: TrafficSpec,
    /// The evaluated experiment.
    pub result: ExperimentResult,
}

/// Runs one simulation per traffic spec under a fixed policy — the
/// traffic axis of the experiment grid, opened to every registered
/// model (and every parameter combination expressible as a spec).
///
/// # Example
///
/// ```
/// use abdex::{sweep_traffics, PolicySpec};
/// use abdex::nepsim::Benchmark;
/// use abdex::traffic::TrafficSpec;
///
/// let traffics: Vec<TrafficSpec> = ["low", "burst:period_s=0.001", "flash"]
///     .iter()
///     .map(|s| s.parse().unwrap())
///     .collect();
/// let cells = sweep_traffics(
///     Benchmark::Ipfwdr, &traffics, &PolicySpec::NoDvs, 200_000, 1);
/// assert_eq!(cells.len(), 3);
/// ```
#[must_use]
pub fn sweep_traffics(
    benchmark: Benchmark,
    traffics: &[TrafficSpec],
    policy: &PolicySpec,
    cycles: u64,
    seed: u64,
) -> Vec<TrafficCell> {
    expect_cells(try_sweep_traffics(
        &Runner::new(),
        benchmark,
        traffics,
        policy,
        cycles,
        seed,
    ))
}

/// Runs a traffic-model sweep on the given [`Runner`], one outcome per
/// spec in list order: the fallible form of [`sweep_traffics`].
#[must_use]
pub fn try_sweep_traffics(
    runner: &Runner,
    benchmark: Benchmark,
    traffics: &[TrafficSpec],
    policy: &PolicySpec,
    cycles: u64,
    seed: u64,
) -> Vec<Result<TrafficCell, JobError>> {
    let experiments = traffics
        .iter()
        .map(|spec| Experiment {
            benchmark,
            traffic: spec.clone(),
            policy: policy.clone(),
            cycles,
            seed,
        })
        .collect();
    let outcomes = run_experiments(runner, experiments);
    let _prof = obs::prof::span("fold");
    outcomes
        .into_iter()
        .zip(traffics)
        .map(|(outcome, spec)| {
            outcome.map(|result| TrafficCell {
                spec: spec.clone(),
                result,
            })
        })
        .collect()
}

/// The Fig. 8 surface: for each cell, the power value below which 80 % of
/// formula-(2) instances fall. Returned as `(threshold, window, power)`
/// triples in sweep order.
#[must_use]
pub fn power_surface(cells: &[GridCell]) -> Vec<(f64, u64, f64)> {
    cells
        .iter()
        .map(|c| (c.threshold_mbps, c.window_cycles, c.result.p80_power_w()))
        .collect()
}

/// The Fig. 9 surface: for each cell, the throughput above which 80 % of
/// formula-(3) instances fall, as `(threshold, window, mbps)` triples.
#[must_use]
pub fn throughput_surface(cells: &[GridCell]) -> Vec<(f64, u64, f64)> {
    cells
        .iter()
        .map(|c| {
            (
                c.threshold_mbps,
                c.window_cycles,
                c.result.p80_throughput_mbps(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use traffic::TrafficLevel;

    #[test]
    fn default_grid_matches_paper() {
        let g = TdvsGrid::default();
        assert_eq!(g.thresholds_mbps, vec![800.0, 1000.0, 1200.0, 1400.0]);
        assert_eq!(g.windows_cycles, vec![20_000, 40_000, 60_000, 80_000]);
        assert_eq!(g.len(), 16);
        assert!(!g.is_empty());
    }

    #[test]
    fn sweep_covers_every_cell() {
        let grid = TdvsGrid {
            thresholds_mbps: vec![1000.0, 1400.0],
            windows_cycles: vec![20_000, 80_000],
        };
        let cells = sweep_tdvs(
            Benchmark::Ipfwdr,
            &TrafficLevel::Medium.into(),
            &grid,
            400_000,
            3,
        );
        assert_eq!(cells.len(), 4);
        let combos: Vec<(f64, u64)> = cells
            .iter()
            .map(|c| (c.threshold_mbps, c.window_cycles))
            .collect();
        assert!(combos.contains(&(1000.0, 20_000)));
        assert!(combos.contains(&(1400.0, 80_000)));
    }

    #[test]
    fn spec_sweep_covers_every_spec_in_order() {
        let specs: Vec<PolicySpec> = ["nodvs", "tdvs:threshold=1400", "queue", "proportional"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let cells = sweep_specs(
            Benchmark::Ipfwdr,
            &TrafficLevel::Low.into(),
            &specs,
            400_000,
            7,
        );
        assert_eq!(cells.len(), 4);
        for (cell, spec) in cells.iter().zip(&specs) {
            assert_eq!(&cell.spec, spec);
            assert_eq!(cell.result.experiment.policy, *spec);
            assert!(cell.result.sim.mean_power_w() > 0.2);
        }
    }

    #[test]
    fn try_sweep_keeps_grid_order_on_any_runner() {
        let grid = TdvsGrid {
            thresholds_mbps: vec![1000.0, 1400.0],
            windows_cycles: vec![20_000, 80_000],
        };
        let outcomes = try_sweep_tdvs(
            &Runner::serial(),
            Benchmark::Ipfwdr,
            &TrafficLevel::Medium.into(),
            &grid,
            300_000,
            3,
        );
        let expected: Vec<(f64, u64)> = vec![
            (1000.0, 20_000),
            (1000.0, 80_000),
            (1400.0, 20_000),
            (1400.0, 80_000),
        ];
        let got: Vec<(f64, u64)> = outcomes
            .iter()
            .map(|o| {
                let c = o.as_ref().expect("no cell failed");
                (c.threshold_mbps, c.window_cycles)
            })
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn traffic_sweep_covers_every_spec_in_order() {
        let traffics: Vec<TrafficSpec> = ["low", "constant:rate=500", "burst:period_s=0.001"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let cells = sweep_traffics(Benchmark::Ipfwdr, &traffics, &PolicySpec::NoDvs, 400_000, 7);
        assert_eq!(cells.len(), 3);
        for (cell, spec) in cells.iter().zip(&traffics) {
            assert_eq!(&cell.spec, spec);
            assert_eq!(cell.result.experiment.traffic, *spec);
            assert!(cell.result.sim.forwarded_packets > 0);
        }
        // The constant source's offered load is exact by construction.
        let offered = cells[1].result.sim.offered_mbps();
        assert!(
            (offered - 500.0).abs() / 500.0 < 0.02,
            "offered {offered:.1}"
        );
    }

    #[test]
    fn surfaces_have_one_point_per_cell() {
        let grid = TdvsGrid {
            thresholds_mbps: vec![1200.0],
            windows_cycles: vec![40_000, 60_000],
        };
        let cells = sweep_tdvs(
            Benchmark::Ipfwdr,
            &TrafficLevel::High.into(),
            &grid,
            400_000,
            3,
        );
        let power = power_surface(&cells);
        let tput = throughput_surface(&cells);
        assert_eq!(power.len(), 2);
        assert_eq!(tput.len(), 2);
        for &(_, _, w) in &power {
            assert!(w > 0.2 && w < 3.0, "implausible power {w}");
        }
        for &(_, _, t) in &tput {
            assert!(t > 0.0, "implausible throughput {t}");
        }
    }
}
