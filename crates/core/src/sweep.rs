//! Design-space sweeps: the paper's TDVS threshold × window grid
//! (§4.1, Figures 6–9) and arbitrary [`PolicySpec`] sweeps — any list of
//! spec strings becomes a sweep table.

use dvs::TdvsConfig;
use nepsim::{Benchmark, PolicySpec};
use serde::{Deserialize, Serialize};
use traffic::TrafficLevel;

use crate::experiment::{Experiment, ExperimentResult};

/// The grid of TDVS parameters to explore.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TdvsGrid {
    /// Top traffic thresholds (Mbps) — the paper compares 800, 1000,
    /// 1200 and 1400 for `ipfwdr`.
    pub thresholds_mbps: Vec<f64>,
    /// Monitor window sizes in base-clock cycles — the paper compares
    /// 20 k to 80 k.
    pub windows_cycles: Vec<u64>,
}

impl Default for TdvsGrid {
    /// The exact grid of paper Figures 6–9.
    fn default() -> Self {
        TdvsGrid {
            thresholds_mbps: vec![800.0, 1000.0, 1200.0, 1400.0],
            windows_cycles: vec![20_000, 40_000, 60_000, 80_000],
        }
    }
}

impl TdvsGrid {
    /// Number of grid cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.thresholds_mbps.len() * self.windows_cycles.len()
    }

    /// `true` when either axis is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.thresholds_mbps.is_empty() || self.windows_cycles.is_empty()
    }
}

/// One evaluated cell of a TDVS sweep.
#[derive(Debug, Clone)]
pub struct GridCell {
    /// The top threshold of this cell, Mbps.
    pub threshold_mbps: f64,
    /// The window size of this cell, cycles.
    pub window_cycles: u64,
    /// The evaluated experiment.
    pub result: ExperimentResult,
}

/// Runs a full TDVS sweep: one simulation per `(threshold, window)` cell,
/// all with the same benchmark, traffic, run length and seed.
///
/// The paper runs this for `ipfwdr` at 8×10⁶ cycles per cell; pass a
/// smaller `cycles` for quick exploration.
///
/// # Example
///
/// ```
/// use abdex::{sweep_tdvs, TdvsGrid};
/// use abdex::nepsim::Benchmark;
/// use abdex::traffic::TrafficLevel;
///
/// let grid = TdvsGrid {
///     thresholds_mbps: vec![1000.0],
///     windows_cycles: vec![40_000],
/// };
/// let cells = sweep_tdvs(Benchmark::Ipfwdr, TrafficLevel::High, &grid, 200_000, 1);
/// assert_eq!(cells.len(), 1);
/// ```
#[must_use]
pub fn sweep_tdvs(
    benchmark: Benchmark,
    traffic: TrafficLevel,
    grid: &TdvsGrid,
    cycles: u64,
    seed: u64,
) -> Vec<GridCell> {
    let mut cells = Vec::with_capacity(grid.len());
    for &threshold in &grid.thresholds_mbps {
        for &window in &grid.windows_cycles {
            let result = Experiment {
                benchmark,
                traffic,
                policy: PolicySpec::Tdvs(TdvsConfig {
                    top_threshold_mbps: threshold,
                    window_cycles: window,
                }),
                cycles,
                seed,
            }
            .run();
            cells.push(GridCell {
                threshold_mbps: threshold,
                window_cycles: window,
                result,
            });
        }
    }
    cells
}

/// One evaluated cell of a policy-spec sweep.
#[derive(Debug, Clone)]
pub struct SpecCell {
    /// The spec this cell ran (its [`PolicySpec::spec_string`] labels the
    /// sweep-table row).
    pub spec: PolicySpec,
    /// The evaluated experiment.
    pub result: ExperimentResult,
}

/// Runs one simulation per policy spec — the open-ended counterpart of
/// [`sweep_tdvs`], covering every registered policy (and every parameter
/// combination expressible as a spec).
///
/// # Example
///
/// ```
/// use abdex::{sweep_specs, PolicySpec};
/// use abdex::nepsim::Benchmark;
/// use abdex::traffic::TrafficLevel;
///
/// let specs: Vec<PolicySpec> = ["nodvs", "queue:high=0.9", "proportional"]
///     .iter()
///     .map(|s| s.parse().unwrap())
///     .collect();
/// let cells = sweep_specs(Benchmark::Ipfwdr, TrafficLevel::High, &specs, 200_000, 1);
/// assert_eq!(cells.len(), 3);
/// ```
#[must_use]
pub fn sweep_specs(
    benchmark: Benchmark,
    traffic: TrafficLevel,
    specs: &[PolicySpec],
    cycles: u64,
    seed: u64,
) -> Vec<SpecCell> {
    specs
        .iter()
        .map(|spec| SpecCell {
            spec: spec.clone(),
            result: Experiment {
                benchmark,
                traffic,
                policy: spec.clone(),
                cycles,
                seed,
            }
            .run(),
        })
        .collect()
}

/// The Fig. 8 surface: for each cell, the power value below which 80 % of
/// formula-(2) instances fall. Returned as `(threshold, window, power)`
/// triples in sweep order.
#[must_use]
pub fn power_surface(cells: &[GridCell]) -> Vec<(f64, u64, f64)> {
    cells
        .iter()
        .map(|c| (c.threshold_mbps, c.window_cycles, c.result.p80_power_w()))
        .collect()
}

/// The Fig. 9 surface: for each cell, the throughput above which 80 % of
/// formula-(3) instances fall, as `(threshold, window, mbps)` triples.
#[must_use]
pub fn throughput_surface(cells: &[GridCell]) -> Vec<(f64, u64, f64)> {
    cells
        .iter()
        .map(|c| {
            (
                c.threshold_mbps,
                c.window_cycles,
                c.result.p80_throughput_mbps(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_grid_matches_paper() {
        let g = TdvsGrid::default();
        assert_eq!(g.thresholds_mbps, vec![800.0, 1000.0, 1200.0, 1400.0]);
        assert_eq!(g.windows_cycles, vec![20_000, 40_000, 60_000, 80_000]);
        assert_eq!(g.len(), 16);
        assert!(!g.is_empty());
    }

    #[test]
    fn sweep_covers_every_cell() {
        let grid = TdvsGrid {
            thresholds_mbps: vec![1000.0, 1400.0],
            windows_cycles: vec![20_000, 80_000],
        };
        let cells = sweep_tdvs(Benchmark::Ipfwdr, TrafficLevel::Medium, &grid, 400_000, 3);
        assert_eq!(cells.len(), 4);
        let combos: Vec<(f64, u64)> = cells
            .iter()
            .map(|c| (c.threshold_mbps, c.window_cycles))
            .collect();
        assert!(combos.contains(&(1000.0, 20_000)));
        assert!(combos.contains(&(1400.0, 80_000)));
    }

    #[test]
    fn spec_sweep_covers_every_spec_in_order() {
        let specs: Vec<PolicySpec> = ["nodvs", "tdvs:threshold=1400", "queue", "proportional"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let cells = sweep_specs(Benchmark::Ipfwdr, TrafficLevel::Low, &specs, 400_000, 7);
        assert_eq!(cells.len(), 4);
        for (cell, spec) in cells.iter().zip(&specs) {
            assert_eq!(&cell.spec, spec);
            assert_eq!(cell.result.experiment.policy, *spec);
            assert!(cell.result.sim.mean_power_w() > 0.2);
        }
    }

    #[test]
    fn surfaces_have_one_point_per_cell() {
        let grid = TdvsGrid {
            thresholds_mbps: vec![1200.0],
            windows_cycles: vec![40_000, 60_000],
        };
        let cells = sweep_tdvs(Benchmark::Ipfwdr, TrafficLevel::High, &grid, 400_000, 3);
        let power = power_surface(&cells);
        let tput = throughput_surface(&cells);
        assert_eq!(power.len(), 2);
        assert_eq!(tput.len(), 2);
        for &(_, _, w) in &power {
            assert!(w > 0.2 && w < 3.0, "implausible power {w}");
        }
        for &(_, _, t) in &tput {
            assert!(t > 0.0, "implausible throughput {t}");
        }
    }
}
