//! Hand-rolled JSON output for experiment results.
//!
//! The workspace's `serde` is an offline no-op shim (see
//! `shims/README.md`), so result containers derive the marker traits but
//! generate no serialization code; this module writes the JSON the
//! `abdex ... --json <path>` flag emits by hand. The schema is flat and
//! stable: every document has a `"kind"` discriminator and every cell
//! carries its full experiment description plus a `"metrics"` object, so
//! downstream tooling (plots, regression trackers) never has to re-parse
//! the human-readable tables.

use scenario::ScenarioRun;
use stats::{welch_t, ConfidenceLevel, Summary};
use xrun::JobError;

use crate::compare::PolicyComparison;
use crate::experiment::ExperimentResult;
use crate::replicate::{
    ReplicatedComparison, ReplicatedGridCell, ReplicatedResult, ReplicatedSpecCell,
    ReplicatedTrafficCell,
};
use crate::sweep::{GridCell, SpecCell, TrafficCell};
use crate::traceio::{StreamStats, TraceAnalysis};

/// Version of the hand-rolled `--json` schema. Bump whenever a document's
/// shape or field semantics change; every document carries it as
/// `"schema_version"` so downstream tooling can refuse input it does not
/// understand instead of misreading it.
///
/// History: **1** — the PR-2 documents (`experiment`, `tdvs_sweep`,
/// `spec_sweep`, `policy_comparison`), no version field. **2** — the
/// version field itself; `"traffic"` holds a [`TrafficSpec`] spec string
/// (a paper level renders as `low`/`medium`/`high` exactly as before);
/// new `traffic_sweep` document. **3** — replication batches: new
/// `replicated_run`, `replicated_sweep` (with an `"axis"`
/// discriminator: `tdvs`/`policies`/`traffics`) and
/// `replicated_compare` documents whose `"metrics"` values are
/// `{mean, half_width, std_dev, min, max, n}` summary objects at the
/// document's `"ci_level"`; single-run documents are unchanged in
/// shape. **4** — scenarios: new `scenario` document (the segment plan
/// plus, per policy, whole-run and per-segment summary metrics from a
/// single segment-snapshotted simulation); `replicated_compare` rows
/// gain `"welch_t_vs_nodvs"` / `"significant_vs_nodvs"` (Welch's
/// t-test of the row's mean power against the noDVS baseline at the
/// document's `"ci_level"`). `"significant_vs_nodvs"` is the
/// authoritative verdict; `"welch_t_vs_nodvs"` is `null` both when no
/// test ran (the baseline row itself, single-replicate folds — the
/// verdict is then `false`) and when the statistic is infinite (two
/// noise-free folds with distinct means, e.g. seed-insensitive CBR
/// traffic — the verdict is then `true`, and `"saving_vs_nodvs"`'s
/// sign carries the direction JSON cannot). **5** — fleets: new
/// `fleet` document (the fleet's axes — `chips`, `dispatch`,
/// `fleet_policy`, per-chip `share`s — plus fleet-wide and per-chip
/// summary-metric objects over the replicates); existing documents are
/// unchanged in shape. **6** — observability: `fleet` per-chip entries
/// gain `"queue_depth"`, a `{p50, p95, p99, n}` object of queue-depth
/// percentiles from a deterministic log2 [`HistogramSketch`] over
/// every recorded epoch of every replicate; new `--record` JSONL
/// timeseries export (a `meta` header line then one object per
/// recorded sample — see [`crate::record`]) shares this version.
/// **7** — stochastic traffic & traces: new `trace_analysis` document
/// (`abdex trace analyze`: inter-arrival and size statistics — mean,
/// CV, sketch percentiles — plus a Hurst-style burstiness proxy,
/// byte-identical for any `--jobs`); `fleet` per-chip entries gain
/// `"queue_wait_us"`, a `{p50, p95, p99, n}` object of per-epoch mean
/// forwarded-packet sojourn percentiles from the recorder's new
/// `queue_wait_us` channel; `--record` exports carry that channel too.
/// **8** — result cache & distribution fits: every document (and the
/// `--record` meta line) gains `"cache_epoch"`, the
/// [`ccache::CACHE_EPOCH`] the producing binary keys its result cache
/// with — a constant per build, so cached and cold runs stay
/// byte-identical while downstream tooling can partition archives by
/// simulator-semantics generation; `trace_analysis` per-stream objects
/// gain `"best_fit"`/`"fit_error"`/`"fits"` (method-of-moments
/// distribution fits as round-trippable `dist:` spec strings) and the
/// document gains a `"provenance"` object when the trace header
/// recorded its generating spec/seed/cycles. Cache hit/miss tallies
/// are deliberately **not** part of any document (they land on
/// stderr): a document's bytes must not depend on cache state.
/// **9** — recording analyzer & profiler: new `obs_summary` document
/// (`abdex obs summarize <record.jsonl>`: per-channel
/// n/min/mean/max/p50/p95/p99 re-derived from a `--record` export via
/// the deterministic log2 [`HistogramSketch`]; chunked fold in fixed
/// chunk order, so the document is bit-identical for any `--jobs`);
/// existing documents are unchanged in shape. The `--profile` Chrome
/// trace introduced alongside is wall-clock observability and is
/// deliberately **unversioned** — like the cache tallies it never
/// enters a result document, and stdout stays byte-identical with and
/// without it.
///
/// [`TrafficSpec`]: traffic::TrafficSpec
/// [`HistogramSketch`]: obs::HistogramSketch
pub const SCHEMA_VERSION: u64 = 9;

/// Escapes a string for a JSON string literal (without the quotes).
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a finite float, or `null` for NaN/infinities (which JSON
/// cannot represent).
fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// A minimal JSON object builder: append fields, then [`Obj::finish`].
#[derive(Debug)]
pub(crate) struct Obj {
    buf: String,
}

impl Obj {
    pub(crate) fn new() -> Self {
        Obj { buf: String::new() }
    }

    fn key(&mut self, key: &str) {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        self.buf.push('"');
        self.buf.push_str(&escape(key));
        self.buf.push_str("\":");
    }

    /// Adds a string field.
    pub(crate) fn str(mut self, key: &str, value: &str) -> Self {
        self.key(key);
        self.buf.push('"');
        self.buf.push_str(&escape(value));
        self.buf.push('"');
        self
    }

    /// Adds a float field (`null` when not finite).
    pub(crate) fn num(mut self, key: &str, value: f64) -> Self {
        self.key(key);
        self.buf.push_str(&number(value));
        self
    }

    /// Adds an integer field.
    pub(crate) fn int(mut self, key: &str, value: u64) -> Self {
        self.key(key);
        self.buf.push_str(&value.to_string());
        self
    }

    /// Adds a boolean field.
    pub(crate) fn bool(mut self, key: &str, value: bool) -> Self {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Adds a field whose value is already-rendered JSON.
    pub(crate) fn raw(mut self, key: &str, json: &str) -> Self {
        self.key(key);
        self.buf.push_str(json);
        self
    }

    /// Closes the object.
    pub(crate) fn finish(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// Renders a JSON array from already-rendered element documents.
pub(crate) fn array(items: &[String]) -> String {
    format!("[{}]", items.join(","))
}

/// The shared per-cell payload: the experiment's axes plus its measured
/// metrics.
fn result_fields(obj: Obj, r: &ExperimentResult) -> Obj {
    let e = &r.experiment;
    let metrics = Obj::new()
        .num("offered_mbps", r.sim.offered_mbps())
        .num("throughput_mbps", r.sim.throughput_mbps())
        .num("mean_power_w", r.sim.mean_power_w())
        .num("p80_power_w", r.p80_power_w())
        .num("p80_throughput_mbps", r.p80_throughput_mbps())
        .num("loss_ratio", r.sim.loss_ratio())
        .num("rx_idle_fraction", r.sim.rx_idle_fraction())
        .num("total_energy_uj", r.sim.total_energy_uj())
        .int("total_switches", r.sim.total_switches)
        .int("forwarded_packets", r.sim.forwarded_packets)
        .finish();
    obj.str("benchmark", &e.benchmark.to_string())
        .str("traffic", &e.traffic.spec_string())
        .str("policy", &e.policy.spec_string())
        .int("cycles", e.cycles)
        .int("seed", e.seed)
        .raw("metrics", &metrics)
}

/// Renders the per-cell failures of a batch, so a document holding a
/// *partial* grid is distinguishable from a complete smaller one: every
/// batch document carries `"failed"` plus one entry per panicked cell.
fn failure_fields(obj: Obj, failures: &[JobError]) -> Obj {
    let rendered: Vec<String> = failures
        .iter()
        .map(|e| {
            Obj::new()
                .str("job", &e.job)
                .int("index", e.index as u64)
                .str("message", &e.message)
                .finish()
        })
        .collect();
    obj.int("failed", rendered.len() as u64)
        .raw("failures", &array(&rendered))
}

/// Renders one per-metric summary as a JSON object: the interval at
/// `level` plus the spread and range behind it.
fn summary_obj(summary: &Summary, level: ConfidenceLevel) -> String {
    Obj::new()
        .num("mean", summary.mean())
        .num("half_width", summary.half_width(level))
        .num("std_dev", summary.std_dev())
        .num("min", summary.min())
        .num("max", summary.max())
        .int("n", summary.n())
        .finish()
}

/// The shared per-cell payload of every replicated document: the base
/// experiment's axes and one summary object per metric field. (The
/// replicate count lives at document level as `"seeds"`; each summary
/// also carries its own `"n"`.)
fn replicated_fields(obj: Obj, r: &ReplicatedResult, level: ConfidenceLevel) -> Obj {
    let e = &r.experiment;
    let mut metrics = Obj::new();
    for (name, summary) in r.metrics.fields() {
        metrics = metrics.raw(name, &summary_obj(summary, level));
    }
    obj.str("benchmark", &e.benchmark.to_string())
        .str("traffic", &e.traffic.spec_string())
        .str("policy", &e.policy.spec_string())
        .int("cycles", e.cycles)
        .int("seed", e.seed)
        .raw("metrics", &metrics.finish())
}

/// The header fields every replicated document opens with.
fn replicated_header(kind: &str, seeds: u64, level: ConfidenceLevel) -> Obj {
    Obj::new()
        .int("schema_version", SCHEMA_VERSION)
        .int("cache_epoch", ccache::CACHE_EPOCH)
        .str("kind", kind)
        .int("seeds", seeds)
        .int("ci_level", level.percent())
}

/// Renders one experiment result as a JSON document
/// (`"kind": "experiment"`).
#[must_use]
pub fn experiment_json(r: &ExperimentResult) -> String {
    result_fields(
        Obj::new()
            .int("schema_version", SCHEMA_VERSION)
            .int("cache_epoch", ccache::CACHE_EPOCH)
            .str("kind", "experiment"),
        r,
    )
    .finish()
}

/// Renders a TDVS threshold × window sweep as a JSON document
/// (`"kind": "tdvs_sweep"`), one cell object per completed grid point
/// in sweep order plus one `failures` entry per panicked cell.
#[must_use]
pub fn tdvs_sweep_json(cells: &[GridCell], failures: &[JobError]) -> String {
    let rendered: Vec<String> = cells
        .iter()
        .map(|c| {
            result_fields(
                Obj::new()
                    .num("threshold_mbps", c.threshold_mbps)
                    .int("window_cycles", c.window_cycles),
                &c.result,
            )
            .finish()
        })
        .collect();
    failure_fields(
        Obj::new()
            .int("schema_version", SCHEMA_VERSION)
            .int("cache_epoch", ccache::CACHE_EPOCH)
            .str("kind", "tdvs_sweep")
            .int("cells", rendered.len() as u64)
            .raw("grid", &array(&rendered)),
        failures,
    )
    .finish()
}

/// Renders a policy-spec sweep as a JSON document
/// (`"kind": "spec_sweep"`), one cell per completed spec in list order
/// plus one `failures` entry per panicked cell.
#[must_use]
pub fn spec_sweep_json(cells: &[SpecCell], failures: &[JobError]) -> String {
    let rendered: Vec<String> = cells
        .iter()
        .map(|c| {
            result_fields(
                Obj::new().str("policy_kind", &c.spec.kind().to_string()),
                &c.result,
            )
            .finish()
        })
        .collect();
    failure_fields(
        Obj::new()
            .int("schema_version", SCHEMA_VERSION)
            .int("cache_epoch", ccache::CACHE_EPOCH)
            .str("kind", "spec_sweep")
            .int("cells", rendered.len() as u64)
            .raw("grid", &array(&rendered)),
        failures,
    )
    .finish()
}

/// Renders a traffic-model sweep as a JSON document
/// (`"kind": "traffic_sweep"`), one cell per completed traffic spec in
/// list order plus one `failures` entry per panicked cell. The cell's
/// `"traffic"` field holds the exact round-trippable spec string;
/// `"traffic_model"` its registry name.
#[must_use]
pub fn traffic_sweep_json(cells: &[TrafficCell], failures: &[JobError]) -> String {
    let rendered: Vec<String> = cells
        .iter()
        .map(|c| result_fields(Obj::new().str("traffic_model", c.spec.name()), &c.result).finish())
        .collect();
    failure_fields(
        Obj::new()
            .int("schema_version", SCHEMA_VERSION)
            .int("cache_epoch", ccache::CACHE_EPOCH)
            .str("kind", "traffic_sweep")
            .int("cells", rendered.len() as u64)
            .raw("grid", &array(&rendered)),
        failures,
    )
    .finish()
}

/// Renders the policy comparison as a JSON document
/// (`"kind": "policy_comparison"`), one row per completed benchmark ×
/// traffic × policy with its saving vs. the noDVS baseline, plus one
/// `failures` entry per panicked cell.
#[must_use]
pub fn comparison_json(cmp: &PolicyComparison, failures: &[JobError]) -> String {
    let rendered: Vec<String> = cmp
        .rows
        .iter()
        .map(|row| {
            let saving = cmp.power_saving(row.benchmark, &row.traffic, row.policy);
            let loss = cmp.throughput_loss(row.benchmark, &row.traffic, row.policy);
            result_fields(
                Obj::new()
                    .num("saving_vs_nodvs", saving.unwrap_or(f64::NAN))
                    .num("throughput_loss_vs_nodvs", loss.unwrap_or(f64::NAN)),
                &row.result,
            )
            .finish()
        })
        .collect();
    failure_fields(
        Obj::new()
            .int("schema_version", SCHEMA_VERSION)
            .int("cache_epoch", ccache::CACHE_EPOCH)
            .str("kind", "policy_comparison")
            .int("rows", rendered.len() as u64)
            .raw("table", &array(&rendered)),
        failures,
    )
    .finish()
}

/// Renders one replicated run as a JSON document
/// (`"kind": "replicated_run"`): the base experiment's axes plus one
/// `{mean, half_width, std_dev, min, max, n}` object per metric at the
/// document's `"ci_level"`.
#[must_use]
pub fn replicated_run_json(r: &ReplicatedResult, level: ConfidenceLevel) -> String {
    replicated_fields(
        replicated_header("replicated_run", r.replicates(), level),
        r,
        level,
    )
    .finish()
}

/// Shared tail of the three replicated-sweep renderers.
fn replicated_sweep_doc(
    axis: &str,
    seeds: u64,
    level: ConfidenceLevel,
    rendered: Vec<String>,
    failures: &[JobError],
) -> String {
    failure_fields(
        replicated_header("replicated_sweep", seeds, level)
            .str("axis", axis)
            .int("cells", rendered.len() as u64)
            .raw("grid", &array(&rendered)),
        failures,
    )
    .finish()
}

/// Renders a replicated TDVS sweep as a JSON document
/// (`"kind": "replicated_sweep"`, `"axis": "tdvs"`).
#[must_use]
pub fn replicated_tdvs_sweep_json(
    cells: &[ReplicatedGridCell],
    seeds: u64,
    level: ConfidenceLevel,
    failures: &[JobError],
) -> String {
    let rendered: Vec<String> = cells
        .iter()
        .map(|c| {
            replicated_fields(
                Obj::new()
                    .num("threshold_mbps", c.threshold_mbps)
                    .int("window_cycles", c.window_cycles),
                &c.result,
                level,
            )
            .finish()
        })
        .collect();
    replicated_sweep_doc("tdvs", seeds, level, rendered, failures)
}

/// Renders a replicated policy-spec sweep as a JSON document
/// (`"kind": "replicated_sweep"`, `"axis": "policies"`).
#[must_use]
pub fn replicated_spec_sweep_json(
    cells: &[ReplicatedSpecCell],
    seeds: u64,
    level: ConfidenceLevel,
    failures: &[JobError],
) -> String {
    let rendered: Vec<String> = cells
        .iter()
        .map(|c| {
            replicated_fields(
                Obj::new().str("policy_kind", &c.spec.kind().to_string()),
                &c.result,
                level,
            )
            .finish()
        })
        .collect();
    replicated_sweep_doc("policies", seeds, level, rendered, failures)
}

/// Renders a replicated traffic sweep as a JSON document
/// (`"kind": "replicated_sweep"`, `"axis": "traffics"`).
#[must_use]
pub fn replicated_traffic_sweep_json(
    cells: &[ReplicatedTrafficCell],
    seeds: u64,
    level: ConfidenceLevel,
    failures: &[JobError],
) -> String {
    let rendered: Vec<String> = cells
        .iter()
        .map(|c| {
            replicated_fields(
                Obj::new().str("traffic_model", c.spec.name()),
                &c.result,
                level,
            )
            .finish()
        })
        .collect();
    replicated_sweep_doc("traffics", seeds, level, rendered, failures)
}

/// Renders the replicated policy comparison as a JSON document
/// (`"kind": "replicated_compare"`), one row per completed benchmark ×
/// traffic × policy cell with its saving vs. the noDVS baseline
/// computed from the replicate means, and the significance of that
/// saving (Welch's t-test on the per-seed mean-power folds at the
/// document's `"ci_level"`; see [`SCHEMA_VERSION`] for the exact
/// `welch_t_vs_nodvs`/`significant_vs_nodvs` semantics, including the
/// infinite-statistic case JSON renders as `null`).
#[must_use]
pub fn replicated_compare_json(
    cmp: &ReplicatedComparison,
    level: ConfidenceLevel,
    failures: &[JobError],
) -> String {
    let rendered: Vec<String> = cmp
        .rows
        .iter()
        .map(|row| {
            let saving = cmp.power_saving(row.benchmark, &row.traffic, row.policy);
            let loss = cmp.throughput_loss(row.benchmark, &row.traffic, row.policy);
            let welch = cmp
                .row(row.benchmark, &row.traffic, dvs::PolicyKind::NoDvs)
                .filter(|base| base.policy != row.policy)
                .and_then(|base| {
                    welch_t(
                        &row.result.metrics.mean_power_w,
                        &base.result.metrics.mean_power_w,
                    )
                });
            replicated_fields(
                Obj::new()
                    .num("saving_vs_nodvs", saving.unwrap_or(f64::NAN))
                    .num("throughput_loss_vs_nodvs", loss.unwrap_or(f64::NAN))
                    .num("welch_t_vs_nodvs", welch.map_or(f64::NAN, |w| w.t))
                    .bool(
                        "significant_vs_nodvs",
                        welch.is_some_and(|w| w.significant(level)),
                    ),
                &row.result,
                level,
            )
            .finish()
        })
        .collect();
    failure_fields(
        replicated_header("replicated_compare", cmp.seeds, level)
            .int("rows", rendered.len() as u64)
            .raw("table", &array(&rendered)),
        failures,
    )
    .finish()
}

/// Renders one metric fold of a scenario slice: one summary object per
/// [`scenario::SegmentDist`] field.
fn segment_dist_obj(dist: &scenario::SegmentDist, level: ConfidenceLevel) -> String {
    let mut metrics = Obj::new();
    for (name, summary) in dist.fields() {
        metrics = metrics.raw(name, &summary_obj(summary, level));
    }
    metrics.finish()
}

/// Renders a completed scenario run as a JSON document
/// (`"kind": "scenario"`): the scenario's description and segment plan,
/// then one entry per completed policy holding `"whole"` (whole-run)
/// and `"segments"` (per-window-slice) summary metrics at the
/// document's `"ci_level"`, plus one `failures` entry per failed
/// policy.
#[must_use]
pub fn scenario_json(run: &ScenarioRun, level: ConfidenceLevel, failures: &[JobError]) -> String {
    let s = &run.scenario;
    let plan: Vec<String> = run
        .plan
        .iter()
        .enumerate()
        .map(|(i, p)| {
            Obj::new()
                .int("index", i as u64)
                .str("label", &p.label)
                .int("start_cycles", p.start_cycles)
                .int("end_cycles", p.end_cycles)
                .finish()
        })
        .collect();
    let policies: Vec<String> = run
        .policies
        .iter()
        .map(|outcome| {
            let segments: Vec<String> = outcome
                .segments
                .iter()
                .enumerate()
                .map(|(i, seg)| {
                    Obj::new()
                        .int("index", i as u64)
                        .str("label", &seg.segment.label)
                        .int("start_cycles", seg.segment.start_cycles)
                        .int("end_cycles", seg.segment.end_cycles)
                        .raw("metrics", &segment_dist_obj(&seg.metrics, level))
                        .finish()
                })
                .collect();
            Obj::new()
                .str("policy", &outcome.policy.spec_string())
                .raw("whole", &segment_dist_obj(&outcome.whole, level))
                .raw("segments", &array(&segments))
                .finish()
        })
        .collect();
    failure_fields(
        replicated_header("scenario", s.seeds, level)
            .str("scenario", &s.name)
            .str("summary", &s.summary)
            .str("benchmark", &s.benchmark.to_string())
            .str("traffic", &s.traffic.spec_string())
            .int("cycles", s.cycles)
            .int("seed", s.seed)
            .int("segments", plan.len() as u64)
            .raw("plan", &array(&plan))
            .int("policies", policies.len() as u64)
            .raw("results", &array(&policies)),
        failures,
    )
    .finish()
}

/// Renders a fleet run as a JSON document (`"kind": "fleet"`): the
/// fleet's axes, the dispatcher's per-chip shares, fleet-wide summary
/// metrics over the replicates and one metrics object per chip.
#[must_use]
pub fn fleet_json(outcome: &fleet::FleetOutcome, level: ConfidenceLevel) -> String {
    let report = &outcome.report;
    let c = &report.config;
    let mut metrics = Obj::new();
    for (name, summary) in report.fleet.fields() {
        metrics = metrics.raw(name, &summary_obj(summary, level));
    }
    let per_chip: Vec<String> = report
        .chips
        .iter()
        .enumerate()
        .map(|(index, chip)| {
            let mut chip_metrics = Obj::new();
            for (name, summary) in chip.fields() {
                chip_metrics = chip_metrics.raw(name, &summary_obj(summary, level));
            }
            // Queue-depth percentiles come from the recorder's sketch,
            // not a replicate fold: exact merges make them worker-count
            // invariant (nulls when no epoch was recorded).
            let (p50, p95, p99) =
                chip.queue_percentiles()
                    .unwrap_or((f64::NAN, f64::NAN, f64::NAN));
            let queue = Obj::new()
                .num("p50", p50)
                .num("p95", p95)
                .num("p99", p99)
                .int("n", chip.queue_depth.count())
                .finish();
            let (w50, w95, w99) = chip
                .wait_percentiles()
                .unwrap_or((f64::NAN, f64::NAN, f64::NAN));
            let wait = Obj::new()
                .num("p50", w50)
                .num("p95", w95)
                .num("p99", w99)
                .int("n", chip.queue_wait_us.count())
                .finish();
            Obj::new()
                .int("chip", index as u64)
                .num("share", chip.share)
                .raw("metrics", &chip_metrics.finish())
                .raw("queue_depth", &queue)
                .raw("queue_wait_us", &wait)
                .finish()
        })
        .collect();
    failure_fields(
        replicated_header("fleet", report.seeds as u64, level)
            .int("chips", c.chips as u64)
            .str("dispatch", &c.dispatch.spec_string())
            .str("benchmark", &c.benchmark.to_string())
            .str("traffic", &c.traffic.spec_string())
            .str("policy", &c.policy.spec_string())
            .str("fleet_policy", &c.fleet_policy.spec_string())
            .int("cycles", c.cycles)
            .int("seed", c.seed)
            .int("replicates", report.fleet.replicates())
            .raw("metrics", &metrics.finish())
            .raw("per_chip", &array(&per_chip)),
        &outcome.errors,
    )
    .finish()
}

/// Renders one trace characterisation as a JSON document
/// (`"kind": "trace_analysis"`). The analysis itself is worker-count
/// invariant, so the document bytes are too.
#[must_use]
pub fn trace_analysis_json(path: &str, a: &TraceAnalysis) -> String {
    let stream = |s: &Option<StreamStats>, fits: &[dist::fit::FitCandidate]| match s {
        None => "null".to_owned(),
        Some(s) => {
            let ranked: Vec<String> = fits
                .iter()
                .map(|c| {
                    Obj::new()
                        .str("spec", &c.spec.spec_string())
                        .num("error", c.error)
                        .finish()
                })
                .collect();
            let mut obj = Obj::new()
                .num("mean", s.mean)
                .num("cv", s.cv)
                .num("p50", s.p50)
                .num("p95", s.p95)
                .num("p99", s.p99);
            if let Some(best) = fits.first() {
                obj = obj
                    .str("best_fit", &best.spec.spec_string())
                    .num("fit_error", best.error);
            }
            obj.raw("fits", &array(&ranked)).finish()
        }
    };
    let provenance = match &a.provenance {
        None => "null".to_owned(),
        Some(p) => Obj::new()
            .str("traffic", &p.traffic)
            .int("seed", p.seed)
            .int("cycles", p.cycles)
            .finish(),
    };
    Obj::new()
        .int("schema_version", SCHEMA_VERSION)
        .int("cache_epoch", ccache::CACHE_EPOCH)
        .str("kind", "trace_analysis")
        .str("trace", path)
        .int("packets", a.packets)
        .num("duration_us", a.duration_us)
        .int("total_bytes", a.total_bytes)
        .num("mean_rate_mbps", a.mean_rate_mbps)
        .raw("gap_us", &stream(&a.gap_us, &a.gap_fits))
        .raw("size_bytes", &stream(&a.size_bytes, &a.size_fits))
        .num("hurst", a.hurst.unwrap_or(f64::NAN))
        .raw("provenance", &provenance)
        .finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compare::{compare_policies, ComparisonConfig};
    use crate::sweep::{sweep_specs, sweep_tdvs, sweep_traffics, TdvsGrid};
    use crate::{Experiment, PolicySpec};
    use nepsim::Benchmark;
    use traffic::{TrafficLevel, TrafficSpec};

    /// A tiny structural validator: checks quotes/brace/bracket balance
    /// outside string literals — enough to catch malformed output
    /// without a full parser.
    fn assert_balanced(json: &str) {
        let mut depth_obj = 0i64;
        let mut depth_arr = 0i64;
        let mut in_str = false;
        let mut escaped = false;
        for c in json.chars() {
            if in_str {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' => depth_obj += 1,
                '}' => depth_obj -= 1,
                '[' => depth_arr += 1,
                ']' => depth_arr -= 1,
                _ => {}
            }
            assert!(depth_obj >= 0 && depth_arr >= 0, "early close in {json}");
        }
        assert!(!in_str, "unterminated string in {json}");
        assert_eq!(depth_obj, 0, "unbalanced braces in {json}");
        assert_eq!(depth_arr, 0, "unbalanced brackets in {json}");
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
        assert_eq!(number(1.5), "1.5");
    }

    #[test]
    fn experiment_document_has_the_schema() {
        let r = Experiment {
            benchmark: Benchmark::Nat,
            traffic: TrafficLevel::Low.into(),
            policy: PolicySpec::NoDvs,
            cycles: 150_000,
            seed: 3,
        }
        .run();
        let json = experiment_json(&r);
        assert_balanced(&json);
        for key in [
            "\"schema_version\":9",
            "\"kind\":\"experiment\"",
            "\"benchmark\":\"nat\"",
            "\"traffic\":\"low\"",
            "\"policy\":\"nodvs\"",
            "\"cycles\":150000",
            "\"seed\":3",
            "\"metrics\":{",
            "\"mean_power_w\":",
            "\"p80_throughput_mbps\":",
            "\"total_switches\":",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn sweep_documents_have_one_entry_per_cell() {
        let grid = TdvsGrid {
            thresholds_mbps: vec![1000.0],
            windows_cycles: vec![20_000, 40_000],
        };
        let cells = sweep_tdvs(
            Benchmark::Ipfwdr,
            &TrafficLevel::Medium.into(),
            &grid,
            200_000,
            1,
        );
        let json = tdvs_sweep_json(&cells, &[]);
        assert_balanced(&json);
        assert!(json.contains("\"kind\":\"tdvs_sweep\""));
        assert!(json.contains("\"schema_version\":9"));
        assert!(json.contains("\"cells\":2"));
        assert!(json.contains("\"failed\":0"));
        assert_eq!(json.matches("\"threshold_mbps\":").count(), 2);

        let specs: Vec<PolicySpec> = ["nodvs", "proportional"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let cells = sweep_specs(
            Benchmark::Ipfwdr,
            &TrafficLevel::Low.into(),
            &specs,
            200_000,
            1,
        );
        let json = spec_sweep_json(&cells, &[]);
        assert_balanced(&json);
        assert!(json.contains("\"kind\":\"spec_sweep\""));
        assert!(json.contains("\"policy_kind\":\"PDVS\""));
    }

    #[test]
    fn partial_batches_carry_a_failure_marker() {
        let failures = vec![JobError {
            job: "ipfwdr/high tdvs:threshold=800,window=20000".into(),
            index: 3,
            message: "ladder panic \"quoted\"".into(),
        }];
        let json = tdvs_sweep_json(&[], &failures);
        assert_balanced(&json);
        assert!(json.contains("\"cells\":0"), "{json}");
        assert!(json.contains("\"failed\":1"), "{json}");
        assert!(json.contains("\"index\":3"), "{json}");
        assert!(json.contains("ladder panic \\\"quoted\\\""), "{json}");
    }

    #[test]
    fn traffic_sweep_document_records_the_specs() {
        let traffics: Vec<TrafficSpec> = ["low", "constant:rate=500,size=576,ports=16"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let cells = sweep_traffics(Benchmark::Ipfwdr, &traffics, &PolicySpec::NoDvs, 200_000, 1);
        let json = traffic_sweep_json(&cells, &[]);
        assert_balanced(&json);
        assert!(json.contains("\"kind\":\"traffic_sweep\""), "{json}");
        assert!(json.contains("\"schema_version\":9"), "{json}");
        assert!(json.contains("\"cells\":2"), "{json}");
        // The exact spec string round-trips through the document.
        assert!(
            json.contains("\"traffic\":\"constant:rate=500,size=576,ports=16\""),
            "{json}"
        );
        assert!(json.contains("\"traffic_model\":\"constant\""), "{json}");
        assert!(json.contains("\"traffic\":\"low\""), "{json}");
    }

    #[test]
    fn comparison_document_carries_savings() {
        let cfg = ComparisonConfig {
            cycles: 150_000,
            ..ComparisonConfig::default()
        };
        let cmp = compare_policies(&[Benchmark::Nat], &[TrafficLevel::Low.into()], &cfg);
        let json = comparison_json(&cmp, &[]);
        assert_balanced(&json);
        assert!(json.contains("\"kind\":\"policy_comparison\""));
        assert!(json.contains("\"schema_version\":9"));
        assert!(json.contains("\"rows\":6"));
        assert_eq!(json.matches("\"saving_vs_nodvs\":").count(), 6);
    }

    #[test]
    fn replicated_run_document_has_summary_metrics() {
        let r = crate::replicate::replicated_run(
            &Experiment {
                benchmark: Benchmark::Nat,
                traffic: TrafficLevel::Low.into(),
                policy: PolicySpec::NoDvs,
                cycles: 150_000,
                seed: 3,
            },
            3,
        );
        let json = replicated_run_json(&r, stats::ConfidenceLevel::P95);
        assert_balanced(&json);
        for key in [
            "\"schema_version\":9",
            "\"kind\":\"replicated_run\"",
            "\"seeds\":3",
            "\"ci_level\":95",
            "\"benchmark\":\"nat\"",
            "\"seed\":3",
            "\"mean_power_w\":{\"mean\":",
            "\"half_width\":",
            "\"std_dev\":",
            "\"n\":3",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // One summary object per metric field.
        assert_eq!(json.matches("\"half_width\":").count(), 10);
    }

    #[test]
    fn replicated_sweep_documents_carry_axis_and_cells() {
        let runner = crate::Runner::new();
        let grid = TdvsGrid {
            thresholds_mbps: vec![1000.0],
            windows_cycles: vec![20_000, 40_000],
        };
        let cells = crate::experiment::expect_cells(crate::replicate::try_replicated_sweep_tdvs(
            &runner,
            Benchmark::Ipfwdr,
            &TrafficLevel::Medium.into(),
            &grid,
            150_000,
            1,
            2,
        ));
        let json = replicated_tdvs_sweep_json(&cells, 2, stats::ConfidenceLevel::P90, &[]);
        assert_balanced(&json);
        assert!(json.contains("\"kind\":\"replicated_sweep\""), "{json}");
        assert!(json.contains("\"axis\":\"tdvs\""), "{json}");
        assert!(json.contains("\"ci_level\":90"), "{json}");
        assert!(json.contains("\"cells\":2"), "{json}");
        assert!(json.contains("\"failed\":0"), "{json}");
        assert_eq!(json.matches("\"threshold_mbps\":").count(), 2);

        let traffics: Vec<TrafficSpec> = ["low", "constant:rate=500"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let cells =
            crate::experiment::expect_cells(crate::replicate::try_replicated_sweep_traffics(
                &runner,
                Benchmark::Ipfwdr,
                &traffics,
                &PolicySpec::NoDvs,
                150_000,
                1,
                2,
            ));
        let json = replicated_traffic_sweep_json(&cells, 2, stats::ConfidenceLevel::P99, &[]);
        assert_balanced(&json);
        assert!(json.contains("\"axis\":\"traffics\""), "{json}");
        assert!(json.contains("\"traffic_model\":\"constant\""), "{json}");

        let specs: Vec<PolicySpec> = ["nodvs", "proportional"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let cells = crate::experiment::expect_cells(crate::replicate::try_replicated_sweep_specs(
            &runner,
            Benchmark::Ipfwdr,
            &TrafficLevel::Low.into(),
            &specs,
            150_000,
            1,
            2,
        ));
        let json = replicated_spec_sweep_json(&cells, 2, stats::ConfidenceLevel::P95, &[]);
        assert_balanced(&json);
        assert!(json.contains("\"axis\":\"policies\""), "{json}");
        assert!(json.contains("\"policy_kind\":\"PDVS\""), "{json}");
    }

    #[test]
    fn replicated_compare_document_carries_interval_savings() {
        let cfg = ComparisonConfig {
            cycles: 150_000,
            ..ComparisonConfig::default()
        };
        let cmp = crate::replicate::replicated_compare(
            &[Benchmark::Nat],
            &[TrafficLevel::Low.into()],
            &cfg,
            2,
        );
        let json = replicated_compare_json(&cmp, stats::ConfidenceLevel::P95, &[]);
        assert_balanced(&json);
        assert!(json.contains("\"kind\":\"replicated_compare\""), "{json}");
        assert!(json.contains("\"schema_version\":9"), "{json}");
        assert!(json.contains("\"seeds\":2"), "{json}");
        assert!(json.contains("\"rows\":6"), "{json}");
        assert_eq!(json.matches("\"saving_vs_nodvs\":").count(), 6);
        // Every row carries full summary metrics and the significance
        // call vs the baseline (the noDVS row itself reports null).
        assert_eq!(json.matches("\"mean_power_w\":{\"mean\":").count(), 6);
        assert_eq!(json.matches("\"welch_t_vs_nodvs\":").count(), 6);
        assert_eq!(json.matches("\"significant_vs_nodvs\":").count(), 6);
        assert!(json.contains("\"welch_t_vs_nodvs\":null"), "{json}");
    }

    #[test]
    fn infinite_welch_statistic_keeps_the_significance_verdict() {
        // Seed-insensitive CBR traffic: every replicate of a cell is
        // identical, so distinct policies give zero-variance folds with
        // distinct means — an infinite t. JSON cannot carry infinity
        // (it renders null), so the documented contract is that
        // `significant_vs_nodvs` stands alone as the verdict.
        let cfg = ComparisonConfig {
            cycles: 150_000,
            ..ComparisonConfig::default()
        };
        let cmp = crate::replicate::replicated_compare(
            &[Benchmark::Ipfwdr],
            &["constant:rate=600".parse().unwrap()],
            &cfg,
            2,
        );
        let json = replicated_compare_json(&cmp, stats::ConfidenceLevel::P95, &[]);
        assert_balanced(&json);
        // Every non-baseline row whose power genuinely differs reports
        // null t (infinite) with a true verdict.
        assert!(
            json.contains("\"welch_t_vs_nodvs\":null,\"significant_vs_nodvs\":true"),
            "{json}"
        );
        // The baseline row stays null + false.
        assert!(
            json.contains("\"welch_t_vs_nodvs\":null,\"significant_vs_nodvs\":false"),
            "{json}"
        );
    }

    #[test]
    fn scenario_document_reports_per_segment_and_whole_run_metrics() {
        let scenario = scenario::Scenario {
            name: "doc-test".to_owned(),
            summary: "a two-window schedule".to_owned(),
            benchmark: Benchmark::Ipfwdr,
            traffic: "schedule:segments=[low@0..150000; constant:rate=900@150000..]"
                .parse()
                .unwrap(),
            policies: vec!["nodvs".parse().unwrap(), "queue".parse().unwrap()],
            cycles: 300_000,
            seed: 3,
            seeds: 2,
        };
        let (run, errors) = scenario::try_run_scenario(&crate::Runner::new(), &scenario);
        assert!(errors.is_empty());
        let json = scenario_json(&run, stats::ConfidenceLevel::P95, &errors);
        assert_balanced(&json);
        for key in [
            "\"schema_version\":9",
            "\"kind\":\"scenario\"",
            "\"scenario\":\"doc-test\"",
            "\"seeds\":2",
            "\"ci_level\":95",
            "\"cycles\":300000",
            "\"segments\":2",
            "\"plan\":[",
            "\"label\":\"low\"",
            "\"start_cycles\":150000",
            "\"policies\":2",
            "\"whole\":{",
            "\"policy\":\"nodvs\"",
            "\"failed\":0",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // Per policy: one whole fold + two segment folds, each with a
        // full summary object per metric field.
        assert_eq!(json.matches("\"mean_power_w\":{\"mean\":").count(), 2 * 3);
        assert_eq!(json.matches("\"half_width\":").count(), 2 * 3 * 9);
    }

    #[test]
    fn fleet_document_reports_fleet_and_per_chip_metrics() {
        let mut config = fleet::FleetConfig::new(3);
        config.cycles = 150_000;
        config.dispatch = "least-loaded:flows=64".parse().unwrap();
        config.fleet_policy = "static-cap:budget=4".parse().unwrap();
        let outcome = fleet::run_fleet(&config, 2, &crate::Runner::new());
        assert!(outcome.errors.is_empty());
        let json = fleet_json(&outcome, stats::ConfidenceLevel::P95);
        assert_balanced(&json);
        for key in [
            "\"schema_version\":9",
            "\"kind\":\"fleet\"",
            "\"seeds\":2",
            "\"ci_level\":95",
            "\"chips\":3",
            "\"dispatch\":\"least-loaded:flows=64\"",
            "\"benchmark\":\"ipfwdr\"",
            "\"traffic\":\"high\"",
            "\"policy\":\"nodvs\"",
            "\"fleet_policy\":\"static-cap:budget=4\"",
            "\"cycles\":150000",
            "\"seed\":42",
            "\"replicates\":2",
            "\"imbalance\":{\"mean\":",
            "\"per_chip\":[",
            "\"chip\":2",
            "\"share\":",
            "\"failed\":0",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // One fleet-level summary per FleetDist field plus one per chip
        // and ChipDist field.
        assert_eq!(json.matches("\"half_width\":").count(), 9 + 3 * 7);
        assert_eq!(json.matches("\"chip\":").count(), 3);
    }
}
