//! **abdex** — assertion-based design exploration of DVS in network
//! processor architectures.
//!
//! This crate is the top of the workspace reproducing Yu et al.,
//! *"Assertion-Based Design Exploration of DVS in Network Processor
//! Architectures"* (DATE 2005). It ties together:
//!
//! * [`nepsim`] — the IXP1200-style NPU simulator with power estimation,
//! * [`loc`] — the Logic-of-Constraints assertion language with the
//!   paper's distribution operators and auto-generated analyzers,
//! * [`dvs`] — the TDVS/EDVS policies and the XScale VF ladder,
//! * [`traffic`] — the synthetic NLANR-style IP traffic models,
//! * [`xrun`] — the parallel experiment runner every sweep, comparison
//!   and ablation executes on,
//! * [`stats`] — streaming summaries, Student-t confidence intervals,
//!   Welch's t significance tests and the seed-derived replication
//!   batches behind every `replicated_*` entry point,
//! * [`scenario`] — time-varying composite scenarios: named workloads
//!   over `schedule:` traffic specs, scenario files, and the
//!   segment-aware runner with per-window metric breakdowns,
//! * [`fleet`] — N NPUs behind a load balancer: pluggable dispatchers
//!   shard one aggregate stream across chips, and fleet power policies
//!   turn a fleet-wide watt budget into per-chip caps,
//!
//! and exposes the paper's experiment flow: run a simulation, collect the
//! trace, apply the LOC distribution formulas (2) and (3), and sweep the
//! design space to find optimal DVS configurations (§4). Batches of
//! independent cells run on all available CPUs (see [`Runner`]); results
//! are bit-identical to serial execution.
//!
//! # Quickstart
//!
//! ```
//! use abdex::{Experiment, PolicySpec};
//! use abdex::nepsim::Benchmark;
//! use abdex::traffic::TrafficLevel;
//!
//! let result = Experiment {
//!     benchmark: Benchmark::Ipfwdr,
//!     traffic: TrafficLevel::Medium.into(),
//!     policy: PolicySpec::NoDvs,
//!     cycles: 300_000, // the paper runs 8_000_000
//!     seed: 1,
//! }
//! .run();
//! assert!(result.sim.forwarded_packets > 0);
//! // Fraction of 100-packet windows with average power below 1.5 W:
//! let frac = result.power.fraction_le(1.5);
//! assert!((0.0..=1.0).contains(&frac));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ablation;
pub mod cachefmt;
pub mod compare;
pub mod experiment;
pub mod formulas;
pub mod json;
pub mod optimal;
pub mod record;
pub mod reference;
pub mod replicate;
pub mod summarize;
pub mod sweep;
pub mod tables;
pub mod traceio;

pub use ablation::{
    sweep_edvs_idle_threshold, sweep_tdvs_hysteresis, try_sweep_edvs_idle_threshold,
    try_sweep_tdvs_hysteresis, AblationCell,
};
pub use cachefmt::run_cached;
pub use ccache::{Cache, CacheCounters, CacheStats, CACHE_EPOCH};
pub use compare::{compare_policies, try_compare_policies, ComparisonRow, PolicyComparison};
pub use dvs::{DvsPolicy, PolicyKind, PolicyRegistry, PolicySpec};
pub use experiment::{run_experiments, Experiment, ExperimentResult, PAPER_RUN_CYCLES};
pub use fleet::{
    run_fleet, DispatchRegistry, DispatchSpec, Dispatcher, FleetConfig, FleetOutcome, FleetPolicy,
    FleetPolicyRegistry, FleetPolicySpec, FleetReport,
};
pub use json::SCHEMA_VERSION;
pub use optimal::{optimal_tdvs, DesignPriority};
pub use record::{
    fleet_record_series, record_jsonl, render_obs_stats, scenario_record_series,
    try_replicated_run_recorded, RecordedSeries,
};
pub use replicate::{
    replicated_compare, replicated_run, replicated_sweep_tdvs, run_replicated_experiments,
    try_replicated_compare, try_replicated_run, try_replicated_sweep_edvs_idle_threshold,
    try_replicated_sweep_specs, try_replicated_sweep_tdvs, try_replicated_sweep_tdvs_hysteresis,
    try_replicated_sweep_traffics, ReplicatedAblationCell, ReplicatedComparison,
    ReplicatedComparisonRow, ReplicatedGridCell, ReplicatedResult, ReplicatedSpecCell,
    ReplicatedTrafficCell,
};
pub use scenario::{
    builtin_scenarios, try_run_scenario, PolicyOutcome, Scenario, ScenarioRun, SegmentDist,
    SegmentMetrics, SegmentOutcome,
};
pub use stats::{
    welch_t, ConfidenceInterval, ConfidenceLevel, ReplicatedMetrics, Replication, Summary, WelchT,
};
pub use summarize::{summarize_record, ChannelSummary, RecordSummary};
pub use sweep::{
    sweep_specs, sweep_tdvs, sweep_traffics, try_sweep_specs, try_sweep_tdvs, try_sweep_traffics,
    GridCell, SpecCell, TdvsGrid, TrafficCell,
};
pub use traceio::{
    analyze_trace, generate_trace, parse_provenance, StreamStats, TraceAnalysis, TraceProvenance,
};
pub use traffic::{TrafficModel, TrafficRegistry, TrafficSpec};
pub use xrun::{Job, JobError, JobResult, JobSpec, ProgressMode, Runner};

// Re-export the substrate crates so downstream users need only `abdex`.
pub use ccache;
pub use desim;
pub use dvs;
pub use fleet;
pub use loc;
pub use nepsim;
pub use obs;
pub use scenario;
pub use stats;
pub use traffic;
pub use xrun;
