//! The paper's LOC formulas, ready to instantiate.
//!
//! All three formulas quantify over `forward` events — one per transmitted
//! IP packet — and compare instance `i` with instance `i + window` to form
//! sliding-window averages.

use loc::builder::annot;
use loc::{AnnotKey, Formula};

/// The packet window the paper uses everywhere: statistics are computed
/// "for each 100 packets forwarded".
pub const PACKET_WINDOW: i64 = 100;

/// Paper formula (1): distribution of the time to forward `window`
/// packets, binned over `(40, 80, 5)` µs.
///
/// ```
/// let f = abdex::formulas::latency_distribution(100);
/// assert_eq!(f.to_string(),
///     "(time(forward[i+100]) - time(forward[i])) dist== (40, 80, 5)");
/// ```
#[must_use]
pub fn latency_distribution(window: i64) -> Formula {
    let dt = annot(AnnotKey::Time, "forward", window) - annot(AnnotKey::Time, "forward", 0);
    dt.dist_eq(40.0, 80.0, 5.0)
}

/// Paper formula (2): the distribution of average power (W) per `window`
/// forwarded packets, analysis period `(0.5, 2.25, 0.01)`.
///
/// Energy is in µJ and time in µs, so the ratio is directly in watts.
///
/// ```
/// let f = abdex::formulas::power_distribution(100);
/// assert!(f.to_string().contains("energy(forward[i+100])"));
/// assert!(f.to_string().contains("dist== (0.5, 2.25, 0.01)"));
/// ```
#[must_use]
pub fn power_distribution(window: i64) -> Formula {
    let de = annot(AnnotKey::Energy, "forward", window) - annot(AnnotKey::Energy, "forward", 0);
    let dt = annot(AnnotKey::Time, "forward", window) - annot(AnnotKey::Time, "forward", 0);
    (de / dt).dist_eq(0.5, 2.25, 0.01)
}

/// Paper formula (3): the distribution of average forwarding throughput
/// (Mbps) per `window` forwarded packets, analysis period `(100, 3300, 10)`.
///
/// `total_bit` is in bits and time in µs; dividing by 10⁶… the paper
/// divides the bit count by 10⁶ and the µs difference yields Mbps×10⁻⁶…
/// — concretely, `bits / us == Mbps`, matching the paper's `10⁶` scaling
/// of seconds-based time.
///
/// ```
/// let f = abdex::formulas::throughput_distribution(100);
/// assert!(f.to_string().contains("total_bit(forward[i+100])"));
/// assert!(f.to_string().contains("dist== (100, 3300, 10)"));
/// ```
#[must_use]
pub fn throughput_distribution(window: i64) -> Formula {
    let db = annot(AnnotKey::TotalBit, "forward", window) - annot(AnnotKey::TotalBit, "forward", 0);
    let dt = annot(AnnotKey::Time, "forward", window) - annot(AnnotKey::Time, "forward", 0);
    (db / dt).dist_eq(100.0, 3300.0, 10.0)
}

/// The §2.3 latency assertion: a `deq` happens no more than `bound`
/// cycles after the matching `enq`.
///
/// ```
/// let f = abdex::formulas::latency_assertion(50.0);
/// assert_eq!(f.to_string(), "(cycle(deq[i]) - cycle(enq[i])) <= 50");
/// ```
#[must_use]
pub fn latency_assertion(bound: f64) -> Formula {
    (annot(AnnotKey::Cycle, "deq", 0) - annot(AnnotKey::Cycle, "enq", 0))
        .le(bound)
        .assert()
}

#[cfg(test)]
mod tests {
    use super::*;
    use loc::{parse, Analyzer, Checker};

    #[test]
    fn formulas_match_paper_text_syntax() {
        let f2 = parse(
            "(energy(forward[i+100]) - energy(forward[i])) / \
             (time(forward[i+100]) - time(forward[i])) dist== (0.5, 2.25, 0.01)",
        )
        .unwrap();
        assert_eq!(power_distribution(PACKET_WINDOW), f2);

        let f3 = parse(
            "(total_bit(forward[i+100]) - total_bit(forward[i])) / \
             (time(forward[i+100]) - time(forward[i])) dist== (100, 3300, 10)",
        )
        .unwrap();
        assert_eq!(throughput_distribution(PACKET_WINDOW), f3);

        let f1 = parse("time(forward[i+100]) - time(forward[i]) dist== (40, 80, 5)").unwrap();
        assert_eq!(latency_distribution(PACKET_WINDOW), f1);
    }

    #[test]
    fn analyzers_generate_from_all_distribution_formulas() {
        for f in [
            latency_distribution(100),
            power_distribution(100),
            throughput_distribution(100),
        ] {
            assert!(Analyzer::from_formula(&f).is_ok(), "{f}");
        }
    }

    #[test]
    fn checker_generates_from_assertion() {
        assert!(Checker::from_formula(&latency_assertion(50.0)).is_ok());
    }

    #[test]
    fn custom_windows_change_offsets() {
        let f = power_distribution(10);
        let mut max_off = 0;
        f.visit_annots(&mut |_, _, off| max_off = max_off.max(off));
        assert_eq!(max_off, 10);
    }
}
