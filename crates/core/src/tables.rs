//! Text rendering of figures and tables — the workspace's stand-in for
//! the paper's gnuplot output.

use dvs::PolicyKind;
use loc::DistributionReport;
use scenario::ScenarioRun;
use stats::{welch_t, ConfidenceLevel, Summary};

use crate::compare::PolicyComparison;
use crate::replicate::{
    ReplicatedComparison, ReplicatedGridCell, ReplicatedResult, ReplicatedSpecCell,
    ReplicatedTrafficCell,
};
use crate::sweep::{GridCell, SpecCell, TrafficCell};
use crate::traceio::{StreamStats, TraceAnalysis};
use dist::fit::FitCandidate;

/// Renders a cumulative "fraction of instances ≤ x" curve (Fig. 6 style)
/// sampled at `points` evenly spaced x values over `[lo, hi]`.
///
/// # Panics
///
/// Panics if `points < 2` or `lo >= hi`.
#[must_use]
pub fn render_cdf(report: &DistributionReport, lo: f64, hi: f64, points: usize) -> String {
    assert!(points >= 2, "need at least two sample points");
    assert!(lo < hi, "lo must be below hi");
    let mut out = String::from("x fraction_le\n");
    for k in 0..points {
        let x = lo + (hi - lo) * k as f64 / (points - 1) as f64;
        out.push_str(&format!("{x:.4} {:.4}\n", report.fraction_le(x)));
    }
    out
}

/// Renders a complementary "fraction of instances ≥ x" curve (Fig. 7
/// style).
///
/// # Panics
///
/// Panics if `points < 2` or `lo >= hi`.
#[must_use]
pub fn render_ccdf(report: &DistributionReport, lo: f64, hi: f64, points: usize) -> String {
    assert!(points >= 2, "need at least two sample points");
    assert!(lo < hi, "lo must be below hi");
    let mut out = String::from("x fraction_ge\n");
    for k in 0..points {
        let x = lo + (hi - lo) * k as f64 / (points - 1) as f64;
        out.push_str(&format!("{x:.4} {:.4}\n", report.fraction_ge(x)));
    }
    out
}

/// Renders a Fig. 8/9-style surface as a table: one row per threshold, one
/// column per window size.
///
/// `surface` is `(threshold, window, value)` triples as produced by
/// [`crate::sweep::power_surface`] / [`crate::sweep::throughput_surface`].
#[must_use]
pub fn render_surface(surface: &[(f64, u64, f64)], value_label: &str) -> String {
    let mut thresholds: Vec<f64> = surface.iter().map(|s| s.0).collect();
    thresholds.dedup();
    let mut windows: Vec<u64> = surface.iter().map(|s| s.1).collect();
    windows.sort_unstable();
    windows.dedup();

    let mut out = format!("{value_label} by threshold (rows) x window (cols)\n");
    out.push_str("threshold\\window");
    for w in &windows {
        out.push_str(&format!(" {w:>9}"));
    }
    out.push('\n');
    for &t in &thresholds {
        out.push_str(&format!("{t:>16.0}"));
        for &w in &windows {
            let v = surface
                .iter()
                .find(|s| s.0 == t && s.1 == w)
                .map_or(f64::NAN, |s| s.2);
            out.push_str(&format!(" {v:>9.3}"));
        }
        out.push('\n');
    }
    out
}

/// Renders the Fig. 11 comparison as a table of mean power (W) per
/// benchmark × traffic × policy, with savings vs. noDVS.
#[must_use]
pub fn render_comparison(cmp: &PolicyComparison) -> String {
    let mut out =
        String::from("benchmark traffic policy mean_power_w saving_vs_nodvs throughput_mbps\n");
    for row in &cmp.rows {
        let saving = cmp
            .power_saving(row.benchmark, &row.traffic, row.policy)
            .unwrap_or(0.0);
        out.push_str(&format!(
            "{:>9} {:>7} {:>6} {:>12.3} {:>15.1}% {:>15.1}\n",
            row.benchmark.to_string(),
            row.traffic.to_string(),
            row.policy.to_string(),
            row.result.sim.mean_power_w(),
            saving * 100.0,
            row.result.sim.throughput_mbps(),
        ));
    }
    out
}

/// Renders a sweep's per-cell summary (thresholds, windows, p80 power and
/// throughput, switch counts).
#[must_use]
pub fn render_sweep(cells: &[GridCell]) -> String {
    let mut out = String::from("threshold_mbps window_cycles p80_power_w p80_tput_mbps switches\n");
    for c in cells {
        out.push_str(&format!(
            "{:>14.0} {:>13} {:>11.3} {:>13.1} {:>8}\n",
            c.threshold_mbps,
            c.window_cycles,
            c.result.p80_power_w(),
            c.result.p80_throughput_mbps(),
            c.result.sim.total_switches,
        ));
    }
    out
}

/// Renders a policy-spec sweep: one row per spec, labelled with its
/// round-trippable spec string.
#[must_use]
pub fn render_spec_sweep(cells: &[SpecCell]) -> String {
    let label_width = cells
        .iter()
        .map(|c| c.spec.spec_string().len())
        .max()
        .unwrap_or(0)
        .max("policy_spec".len());
    let mut out = format!(
        "{:<label_width$} {:>6} {:>12} {:>11} {:>13} {:>8}\n",
        "policy_spec", "kind", "mean_power_w", "p80_power_w", "p80_tput_mbps", "switches"
    );
    for c in cells {
        out.push_str(&format!(
            "{:<label_width$} {:>6} {:>12.3} {:>11.3} {:>13.1} {:>8}\n",
            c.spec.spec_string(),
            c.spec.kind().to_string(),
            c.result.sim.mean_power_w(),
            c.result.p80_power_w(),
            c.result.p80_throughput_mbps(),
            c.result.sim.total_switches,
        ));
    }
    out
}

/// Renders a traffic-model sweep: one row per traffic spec, labelled
/// with its round-trippable spec string, with the offered load next to
/// what the chip actually achieved under it.
#[must_use]
pub fn render_traffic_sweep(cells: &[TrafficCell]) -> String {
    let label_width = cells
        .iter()
        .map(|c| c.spec.spec_string().len())
        .max()
        .unwrap_or(0)
        .max("traffic_spec".len());
    let mut out = format!(
        "{:<label_width$} {:>12} {:>12} {:>12} {:>10} {:>8}\n",
        "traffic_spec", "offered_mbps", "tput_mbps", "mean_power_w", "loss_ratio", "switches"
    );
    for c in cells {
        out.push_str(&format!(
            "{:<label_width$} {:>12.1} {:>12.1} {:>12.3} {:>10.4} {:>8}\n",
            c.spec.spec_string(),
            c.result.sim.offered_mbps(),
            c.result.sim.throughput_mbps(),
            c.result.sim.mean_power_w(),
            c.result.sim.loss_ratio(),
            c.result.sim.total_switches,
        ));
    }
    out
}

/// One `mean±half-width` table cell at the given precision — the
/// format every replicated table shares.
fn pm(summary: &Summary, level: ConfidenceLevel, precision: usize) -> String {
    format!(
        "{:.precision$}±{:.precision$}",
        summary.mean(),
        summary.half_width(level)
    )
}

/// Renders one replicated result as a metric-per-row table: mean,
/// confidence half-width, standard deviation and the observed range of
/// every metric over the k replicates.
#[must_use]
pub fn render_replicated_run(r: &ReplicatedResult, level: ConfidenceLevel) -> String {
    let mut out = format!(
        "{:<28} {:>12} {:>12} {:>10} {:>12} {:>12}\n",
        format!("metric ({} seeds, {} CI)", r.replicates(), level),
        "mean",
        "half_width",
        "std_dev",
        "min",
        "max"
    );
    for (name, summary) in r.metrics.fields() {
        out.push_str(&format!(
            "{name:<28} {:>12.4} {:>12.4} {:>10.4} {:>12.4} {:>12.4}\n",
            summary.mean(),
            summary.half_width(level),
            summary.std_dev(),
            summary.min(),
            summary.max(),
        ));
    }
    out
}

/// Renders a replicated TDVS sweep: one row per grid cell, the key
/// paper quantities as `mean±half-width` over the replicates.
#[must_use]
pub fn render_replicated_sweep(cells: &[ReplicatedGridCell], level: ConfidenceLevel) -> String {
    let mut out = format!(
        "threshold_mbps window_cycles {:>15} {:>15} {:>17} {:>13}\n",
        "mean_power_w", "p80_power_w", "p80_tput_mbps", "switches"
    );
    for c in cells {
        let m = &c.result.metrics;
        out.push_str(&format!(
            "{:>14.0} {:>13} {:>15} {:>15} {:>17} {:>13}\n",
            c.threshold_mbps,
            c.window_cycles,
            pm(&m.mean_power_w, level, 3),
            pm(&m.p80_power_w, level, 3),
            pm(&m.p80_throughput_mbps, level, 1),
            pm(&m.total_switches, level, 1),
        ));
    }
    out
}

/// Renders a replicated policy-spec sweep: one row per spec, labelled
/// with its round-trippable spec string.
#[must_use]
pub fn render_replicated_spec_sweep(
    cells: &[ReplicatedSpecCell],
    level: ConfidenceLevel,
) -> String {
    let label_width = cells
        .iter()
        .map(|c| c.spec.spec_string().len())
        .max()
        .unwrap_or(0)
        .max("policy_spec".len());
    let mut out = format!(
        "{:<label_width$} {:>15} {:>15} {:>17} {:>13}\n",
        "policy_spec", "mean_power_w", "p80_power_w", "p80_tput_mbps", "switches"
    );
    for c in cells {
        let m = &c.result.metrics;
        out.push_str(&format!(
            "{:<label_width$} {:>15} {:>15} {:>17} {:>13}\n",
            c.spec.spec_string(),
            pm(&m.mean_power_w, level, 3),
            pm(&m.p80_power_w, level, 3),
            pm(&m.p80_throughput_mbps, level, 1),
            pm(&m.total_switches, level, 1),
        ));
    }
    out
}

/// Renders a replicated traffic-model sweep: one row per traffic spec
/// with offered load, achieved throughput, power and loss as
/// `mean±half-width`.
#[must_use]
pub fn render_replicated_traffic_sweep(
    cells: &[ReplicatedTrafficCell],
    level: ConfidenceLevel,
) -> String {
    let label_width = cells
        .iter()
        .map(|c| c.spec.spec_string().len())
        .max()
        .unwrap_or(0)
        .max("traffic_spec".len());
    let mut out = format!(
        "{:<label_width$} {:>15} {:>15} {:>15} {:>15}\n",
        "traffic_spec", "offered_mbps", "tput_mbps", "mean_power_w", "loss_ratio"
    );
    for c in cells {
        let m = &c.result.metrics;
        out.push_str(&format!(
            "{:<label_width$} {:>15} {:>15} {:>15} {:>15}\n",
            c.spec.spec_string(),
            pm(&m.offered_mbps, level, 1),
            pm(&m.throughput_mbps, level, 1),
            pm(&m.mean_power_w, level, 3),
            pm(&m.loss_ratio, level, 4),
        ));
    }
    out
}

/// Renders the replicated Fig. 11 comparison: mean power and
/// throughput as `mean±half-width`, savings computed from the
/// replicate means. A saving marked `*` is significant vs the noDVS
/// baseline at the table's confidence level (Welch's t-test over the
/// two per-seed mean-power folds); an unmarked saving is
/// indistinguishable from replication noise at that level.
#[must_use]
pub fn render_replicated_comparison(cmp: &ReplicatedComparison, level: ConfidenceLevel) -> String {
    let mut out = format!(
        "benchmark traffic policy {:>15} saving_vs_nodvs {:>17}\n",
        "mean_power_w", "tput_mbps"
    );
    let mut any_tested = false;
    for row in &cmp.rows {
        let saving = cmp
            .power_saving(row.benchmark, &row.traffic, row.policy)
            .unwrap_or(0.0);
        let m = &row.result.metrics;
        let welch = cmp
            .row(row.benchmark, &row.traffic, PolicyKind::NoDvs)
            .filter(|base| base.policy != row.policy)
            .and_then(|base| welch_t(&m.mean_power_w, &base.result.metrics.mean_power_w));
        any_tested |= welch.is_some();
        let marker = match welch {
            Some(w) if w.significant(level) => '*',
            _ => ' ',
        };
        out.push_str(&format!(
            "{:>9} {:>7} {:>6} {:>15} {:>13.1}%{} {:>17}\n",
            row.benchmark.to_string(),
            row.traffic.to_string(),
            row.policy.to_string(),
            pm(&m.mean_power_w, level, 3),
            saving * 100.0,
            marker,
            pm(&m.throughput_mbps, level, 1),
        ));
    }
    if any_tested {
        out.push_str(&format!(
            "(* = power differs from noDVS at the {level} level, Welch's t)\n"
        ));
    }
    out
}

/// Renders a completed scenario run: one block per policy with the
/// per-segment breakdown rows and a closing `whole-run` row, every
/// metric as `mean±half-width` over the replicates.
#[must_use]
pub fn render_scenario(run: &ScenarioRun, level: ConfidenceLevel) -> String {
    let s = &run.scenario;
    let mut out = format!(
        "scenario {}: {} @ {} for {} cycles ({} seed(s), {} CI)\n",
        s.name,
        s.benchmark,
        s.traffic.spec_string(),
        s.cycles,
        s.seeds,
        level,
    );
    if !s.summary.is_empty() {
        out.push_str(&format!("  {}\n", s.summary));
    }
    let label_width = run
        .plan
        .iter()
        .map(|p| p.label.len())
        .max()
        .unwrap_or(0)
        .max("whole-run".len())
        .max("segment".len());
    let row = |out: &mut String, label: &str, cycles: String, m: &scenario::SegmentDist| {
        out.push_str(&format!(
            "{label:<label_width$} {cycles:>17} {:>15} {:>15} {:>14} {:>16} {:>13} {:>11}\n",
            pm(&m.offered_mbps, level, 1),
            pm(&m.throughput_mbps, level, 1),
            pm(&m.mean_power_w, level, 3),
            pm(&m.total_energy_uj, level, 0),
            pm(&m.rx_idle_fraction, level, 3),
            pm(&m.dropped_packets, level, 1),
        ));
    };
    for outcome in &run.policies {
        out.push_str(&format!("\npolicy {}\n", outcome.policy.spec_string()));
        out.push_str(&format!(
            "{:<label_width$} {:>17} {:>15} {:>15} {:>14} {:>16} {:>13} {:>11}\n",
            "segment",
            "cycles",
            "offered_mbps",
            "tput_mbps",
            "mean_power_w",
            "energy_uj",
            "rx_idle",
            "drops"
        ));
        for seg in &outcome.segments {
            row(
                &mut out,
                &seg.segment.label,
                format!("{}..{}", seg.segment.start_cycles, seg.segment.end_cycles),
                &seg.metrics,
            );
        }
        row(
            &mut out,
            "whole-run",
            format!("0..{}", s.cycles),
            &outcome.whole,
        );
    }
    out
}

/// Renders a completed fleet run: a title line naming every axis, a
/// fleet-wide metric-per-row summary table, and a per-chip table with
/// the dispatcher's share next to the key chip metrics as
/// `mean±half-width` over the replicates.
#[must_use]
pub fn render_fleet(report: &fleet::FleetReport, level: ConfidenceLevel) -> String {
    let mut out = format!(
        "{} ({} seed(s), {} CI)\n",
        report.config.label(),
        report.seeds,
        level,
    );
    out.push_str(&format!(
        "{:<20} {:>12} {:>12} {:>10} {:>12} {:>12}\n",
        "fleet metric", "mean", "half_width", "std_dev", "min", "max"
    ));
    for (name, summary) in report.fleet.fields() {
        out.push_str(&format!(
            "{name:<20} {:>12.4} {:>12.4} {:>10.4} {:>12.4} {:>12.4}\n",
            summary.mean(),
            summary.half_width(level),
            summary.std_dev(),
            summary.min(),
            summary.max(),
        ));
    }
    out.push_str(&format!(
        "\n{:>4} {:>7} {:>15} {:>15} {:>14} {:>16} {:>13} {:>12} {:>12} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}\n",
        "chip",
        "share",
        "offered_mbps",
        "tput_mbps",
        "mean_power_w",
        "energy_uj",
        "loss_ratio",
        "drops",
        "switches",
        "q_p50",
        "q_p95",
        "q_p99",
        "w_p50",
        "w_p95",
        "w_p99"
    ));
    for (index, chip) in report.chips.iter().enumerate() {
        // Queue-depth (q_*, packets) and queue-wait (w_*, µs)
        // percentiles come from the recorder's epoch sketches, not a
        // replicate fold — `-` when nothing was recorded (e.g. every
        // replicate of the chip failed).
        let quantile = |q: Option<f64>| q.map_or_else(|| "-".to_owned(), |v| format!("{v:.1}"));
        let (p50, p95, p99) = match chip.queue_percentiles() {
            Some((p50, p95, p99)) => (Some(p50), Some(p95), Some(p99)),
            None => (None, None, None),
        };
        let (w50, w95, w99) = match chip.wait_percentiles() {
            Some((w50, w95, w99)) => (Some(w50), Some(w95), Some(w99)),
            None => (None, None, None),
        };
        out.push_str(&format!(
            "{index:>4} {:>7.4} {:>15} {:>15} {:>14} {:>16} {:>13} {:>12} {:>12} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}\n",
            chip.share,
            pm(&chip.offered_mbps, level, 1),
            pm(&chip.throughput_mbps, level, 1),
            pm(&chip.mean_power_w, level, 3),
            pm(&chip.total_energy_uj, level, 0),
            pm(&chip.loss_ratio, level, 4),
            pm(&chip.dropped_packets, level, 1),
            pm(&chip.total_switches, level, 1),
            quantile(p50),
            quantile(p95),
            quantile(p99),
            quantile(w50),
            quantile(w95),
            quantile(w99),
        ));
    }
    out
}

/// Renders one trace characterisation: header line, one row per
/// stream (inter-arrival gaps and sizes), then the burstiness proxy.
#[must_use]
pub fn render_trace_analysis(path: &str, a: &TraceAnalysis) -> String {
    let mut out = format!(
        "trace {path}: {} packets, {:.1} us span, {} bytes, {:.1} Mbps mean rate\n",
        a.packets, a.duration_us, a.total_bytes, a.mean_rate_mbps
    );
    if let Some(p) = &a.provenance {
        out.push_str(&format!(
            "generated by: --traffic {} --seed {} --cycles {}\n",
            p.traffic, p.seed, p.cycles
        ));
    }
    out.push_str(&format!(
        "{:<12} {:>12} {:>8} {:>12} {:>12} {:>12}  {:<40} {:>8}\n",
        "stream", "mean", "cv", "p50", "p95", "p99", "best fit", "fit err"
    ));
    let row = |out: &mut String, name: &str, s: &Option<StreamStats>, fits: &[FitCandidate]| {
        let Some(s) = s else {
            out.push_str(&format!("{name:<12} {:>12}\n", "(empty)"));
            return;
        };
        let fit = match fits.first() {
            Some(best) => format!("  {:<40} {:>8.4}", best.spec.spec_string(), best.error),
            None => format!("  {:<40}", "(no fit)"),
        };
        out.push_str(&format!(
            "{name:<12} {:>12.4} {:>8.3} {:>12.4} {:>12.4} {:>12.4}{}\n",
            s.mean,
            s.cv,
            s.p50,
            s.p95,
            s.p99,
            fit.trim_end()
        ));
    };
    row(&mut out, "gap_us", &a.gap_us, &a.gap_fits);
    row(&mut out, "size_bytes", &a.size_bytes, &a.size_fits);
    match a.hurst {
        Some(h) => out.push_str(&format!(
            "hurst estimate {h:.3} (aggregated-variance proxy; 0.5 ~ Poisson, -> 1 long-range dependent)\n"
        )),
        None => out.push_str("hurst estimate n/a (trace too short)\n"),
    }
    out
}

/// Renders a distribution's cumulative curve as CSV (`x,fraction`), ready
/// for gnuplot/matplotlib — the workspace's equivalent of the paper's
/// plotted series.
///
/// # Panics
///
/// Panics if `points < 2` or `lo >= hi`.
#[must_use]
pub fn render_cdf_csv(report: &DistributionReport, lo: f64, hi: f64, points: usize) -> String {
    assert!(points >= 2, "need at least two sample points");
    assert!(lo < hi, "lo must be below hi");
    let mut out = String::from("x,fraction_le\n");
    for k in 0..points {
        let x = lo + (hi - lo) * k as f64 / (points - 1) as f64;
        out.push_str(&format!("{x},{}\n", report.fraction_le(x)));
    }
    out
}

/// Renders a Fig. 8/9-style surface as CSV (`threshold,window,value`).
#[must_use]
pub fn render_surface_csv(surface: &[(f64, u64, f64)], value_label: &str) -> String {
    let mut out = format!("threshold_mbps,window_cycles,{value_label}\n");
    for &(t, w, v) in surface {
        out.push_str(&format!("{t},{w},{v}\n"));
    }
    out
}

/// Renders the Fig. 11 comparison as CSV.
#[must_use]
pub fn render_comparison_csv(cmp: &PolicyComparison) -> String {
    let mut out =
        String::from("benchmark,traffic,policy,mean_power_w,saving_vs_nodvs,throughput_mbps\n");
    for row in &cmp.rows {
        let saving = cmp
            .power_saving(row.benchmark, &row.traffic, row.policy)
            .unwrap_or(0.0);
        out.push_str(&format!(
            "{},{},{},{},{},{}\n",
            row.benchmark,
            row.traffic,
            row.policy,
            row.result.sim.mean_power_w(),
            saving,
            row.result.sim.throughput_mbps(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compare::{compare_policies, ComparisonConfig};
    use crate::formulas::power_distribution;
    use loc::{Analyzer, Annotations, TraceRecord};
    use nepsim::Benchmark;
    use traffic::{TrafficLevel, TrafficSpec};

    fn tiny_report() -> DistributionReport {
        let mut a = Analyzer::from_formula(&power_distribution(1)).unwrap();
        for k in 0..50u64 {
            let annots = Annotations {
                time: k as f64,
                energy: k as f64 * 1.2, // constant 1.2 W
                ..Annotations::default()
            };
            a.push(&TraceRecord::new("forward", annots));
        }
        a.finish()
    }

    #[test]
    fn cdf_rendering_is_monotone() {
        let text = render_cdf(&tiny_report(), 0.5, 2.25, 10);
        let fracs: Vec<f64> = text
            .lines()
            .skip(1)
            .map(|l| l.split_whitespace().nth(1).unwrap().parse().unwrap())
            .collect();
        assert_eq!(fracs.len(), 10);
        assert!(fracs.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn ccdf_rendering_is_antitone() {
        let text = render_ccdf(&tiny_report(), 0.5, 2.25, 10);
        let fracs: Vec<f64> = text
            .lines()
            .skip(1)
            .map(|l| l.split_whitespace().nth(1).unwrap().parse().unwrap())
            .collect();
        assert!(fracs.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn surface_table_lists_all_cells() {
        let surface = vec![
            (800.0, 20_000, 1.0),
            (800.0, 40_000, 1.1),
            (1000.0, 20_000, 1.2),
            (1000.0, 40_000, 1.3),
        ];
        let text = render_surface(&surface, "power");
        assert!(text.contains("800"));
        assert!(text.contains("1000"));
        assert!(text.contains("1.300"));
        assert_eq!(text.lines().count(), 2 + 2);
    }

    #[test]
    fn comparison_table_renders() {
        let cfg = ComparisonConfig {
            cycles: 150_000,
            ..ComparisonConfig::default()
        };
        let cmp = compare_policies(&[Benchmark::Nat], &[TrafficLevel::Low.into()], &cfg);
        let text = render_comparison(&cmp);
        assert!(text.contains("nat"));
        assert!(text.contains("noDVS"));
        assert!(text.contains("TDVS"));
        assert!(text.contains("EDVS"));
        assert!(text.contains("TEDVS"));
        assert!(text.contains("QDVS"));
        assert!(text.contains("PDVS"));
    }

    #[test]
    fn spec_sweep_table_labels_rows_with_spec_strings() {
        use crate::sweep::sweep_specs;
        let specs: Vec<crate::PolicySpec> = ["nodvs", "queue:high=0.9,low=0.1"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let cells = sweep_specs(
            Benchmark::Nat,
            &TrafficLevel::Low.into(),
            &specs,
            150_000,
            1,
        );
        let text = render_spec_sweep(&cells);
        assert!(text.starts_with("policy_spec"));
        assert!(text.contains("nodvs"));
        assert!(text.contains("queue:high=0.9,low=0.1,window=40000"));
        assert!(text.contains("QDVS"));
        assert_eq!(text.lines().count(), 3);
    }

    #[test]
    fn traffic_sweep_table_labels_rows_with_spec_strings() {
        use crate::sweep::sweep_traffics;
        let traffics: Vec<TrafficSpec> = ["low", "constant:rate=500"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let cells = sweep_traffics(
            Benchmark::Nat,
            &traffics,
            &crate::PolicySpec::NoDvs,
            150_000,
            1,
        );
        let text = render_traffic_sweep(&cells);
        assert!(text.starts_with("traffic_spec"));
        assert!(text.contains("low"));
        assert!(text.contains("constant:rate=500,size=576,ports=16"));
        assert_eq!(text.lines().count(), 3);
    }

    #[test]
    #[should_panic(expected = "at least two sample points")]
    fn cdf_rejects_single_point() {
        let _ = render_cdf(&tiny_report(), 0.0, 1.0, 1);
    }

    #[test]
    fn replicated_tables_render_mean_plus_minus_half_width() {
        use crate::replicate::{replicated_run, replicated_sweep_tdvs};
        use crate::Experiment;

        let r = replicated_run(
            &Experiment {
                benchmark: Benchmark::Nat,
                traffic: TrafficLevel::Low.into(),
                policy: crate::PolicySpec::NoDvs,
                cycles: 150_000,
                seed: 3,
            },
            3,
        );
        let text = render_replicated_run(&r, ConfidenceLevel::P95);
        assert!(text.contains("3 seeds, 95% CI"), "{text}");
        assert!(text.contains("mean_power_w"), "{text}");
        assert!(text.contains("p80_throughput_mbps"), "{text}");
        // Header + one row per metric field.
        assert_eq!(text.lines().count(), 1 + r.metrics.fields().len());

        let grid = crate::TdvsGrid {
            thresholds_mbps: vec![1000.0],
            windows_cycles: vec![40_000],
        };
        let cells = replicated_sweep_tdvs(
            Benchmark::Ipfwdr,
            &TrafficLevel::Medium.into(),
            &grid,
            150_000,
            1,
            2,
        );
        let text = render_replicated_sweep(&cells, ConfidenceLevel::P95);
        assert!(text.starts_with("threshold_mbps"), "{text}");
        // Every metric cell is a mean±half-width pair.
        assert!(
            text.lines().nth(1).unwrap().matches('±').count() >= 4,
            "{text}"
        );
    }

    #[test]
    fn replicated_comparison_table_reports_savings_from_means() {
        use crate::replicate::replicated_compare;
        let cfg = ComparisonConfig {
            cycles: 150_000,
            ..ComparisonConfig::default()
        };
        let cmp = replicated_compare(&[Benchmark::Nat], &[TrafficLevel::Low.into()], &cfg, 2);
        let text = render_replicated_comparison(&cmp, ConfidenceLevel::P95);
        assert!(text.contains("saving_vs_nodvs"), "{text}");
        assert!(text.contains("noDVS"), "{text}");
        assert!(text.contains("PDVS"), "{text}");
        // Header + 6 policy rows + the Welch significance legend.
        assert_eq!(text.lines().count(), 1 + 6 + 1);
        assert!(text.contains('±'), "{text}");
        assert!(text.contains("Welch's t"), "{text}");
    }

    #[test]
    fn scenario_table_renders_segment_and_whole_run_rows() {
        let scenario = scenario::Scenario {
            name: "table-test".to_owned(),
            summary: "two windows".to_owned(),
            benchmark: Benchmark::Ipfwdr,
            traffic: "schedule:segments=[low@0..150000; constant:rate=900@150000..]"
                .parse()
                .unwrap(),
            policies: vec![crate::PolicySpec::NoDvs],
            cycles: 300_000,
            seed: 5,
            seeds: 2,
        };
        let (run, errors) = scenario::try_run_scenario(&crate::Runner::new(), &scenario);
        assert!(errors.is_empty());
        let text = render_scenario(&run, ConfidenceLevel::P95);
        assert!(text.starts_with("scenario table-test:"), "{text}");
        assert!(text.contains("policy nodvs"), "{text}");
        assert!(text.contains("whole-run"), "{text}");
        assert!(text.contains("0..150000"), "{text}");
        assert!(text.contains("150000..300000"), "{text}");
        assert!(text.contains('±'), "{text}");
        // Title + summary + (policy line + header + 2 segments + whole).
        assert_eq!(text.lines().count(), 2 + 1 + 1 + 1 + 2 + 1);
    }

    #[test]
    fn replicated_spec_and_traffic_tables_label_rows_with_specs() {
        use crate::replicate::{try_replicated_sweep_specs, try_replicated_sweep_traffics};
        let runner = crate::Runner::new();
        let specs: Vec<crate::PolicySpec> = ["nodvs", "queue"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let cells = crate::experiment::expect_cells(try_replicated_sweep_specs(
            &runner,
            Benchmark::Nat,
            &TrafficLevel::Low.into(),
            &specs,
            150_000,
            1,
            2,
        ));
        let text = render_replicated_spec_sweep(&cells, ConfidenceLevel::P95);
        assert!(text.starts_with("policy_spec"), "{text}");
        assert!(text.contains("queue:high="), "{text}");

        let traffics: Vec<TrafficSpec> = ["low", "constant:rate=500"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let cells = crate::experiment::expect_cells(try_replicated_sweep_traffics(
            &runner,
            Benchmark::Nat,
            &traffics,
            &crate::PolicySpec::NoDvs,
            150_000,
            1,
            2,
        ));
        let text = render_replicated_traffic_sweep(&cells, ConfidenceLevel::P95);
        assert!(text.starts_with("traffic_spec"), "{text}");
        assert!(text.contains("constant:rate=500"), "{text}");
        assert_eq!(text.lines().count(), 3);
    }

    #[test]
    fn fleet_table_renders_fleet_and_per_chip_rows() {
        let mut config = fleet::FleetConfig::new(3);
        config.cycles = 150_000;
        config.dispatch = "hash:flows=64".parse().unwrap();
        let outcome = fleet::run_fleet(&config, 2, &crate::Runner::new());
        assert!(outcome.errors.is_empty());
        let text = render_fleet(&outcome.report, ConfidenceLevel::P95);
        assert!(
            text.starts_with("fleet chips=3 dispatch=hash:flows=64"),
            "{text}"
        );
        assert!(text.contains("2 seed(s), 95% CI"), "{text}");
        assert!(text.contains("imbalance"), "{text}");
        assert!(text.contains('±'), "{text}");
        // Title + fleet header + 9 fleet metrics + blank + chip header
        // + 3 chip rows.
        assert_eq!(text.lines().count(), 1 + 1 + 9 + 1 + 1 + 3);
        // Shares sum to 1 across the chip rows, and every chip row ends
        // with its three recorder-sketch queue-depth percentiles.
        assert!(text.contains("q_p50"), "{text}");
        let mut shares = 0.0;
        for line in text.lines().skip(1 + 1 + 9 + 1 + 1) {
            let cols: Vec<&str> = line.split_whitespace().collect();
            shares += cols[1].parse::<f64>().unwrap();
            let p50: f64 = cols[cols.len() - 3].parse().unwrap();
            let p99: f64 = cols[cols.len() - 1].parse().unwrap();
            assert!(p50 >= 0.0 && p99 >= p50, "{line}");
        }
        assert!((shares - 1.0).abs() < 1e-6, "{text}");
    }

    #[test]
    fn csv_renderers_produce_parsable_rows() {
        let csv = render_cdf_csv(&tiny_report(), 0.5, 2.25, 5);
        assert_eq!(csv.lines().count(), 6);
        for line in csv.lines().skip(1) {
            let cols: Vec<&str> = line.split(',').collect();
            assert_eq!(cols.len(), 2);
            let _: f64 = cols[0].parse().unwrap();
            let _: f64 = cols[1].parse().unwrap();
        }

        let surface = vec![(800.0, 20_000u64, 1.1), (1000.0, 40_000, 1.2)];
        let csv = render_surface_csv(&surface, "p80_power_w");
        assert!(csv.starts_with("threshold_mbps,window_cycles,p80_power_w\n"));
        assert!(csv.contains("800,20000,1.1"));

        let cfg = ComparisonConfig {
            cycles: 150_000,
            ..ComparisonConfig::default()
        };
        let cmp = compare_policies(&[Benchmark::Nat], &[TrafficLevel::Low.into()], &cfg);
        let csv = render_comparison_csv(&cmp);
        assert_eq!(csv.lines().count(), 7); // header + 6 policy families
        assert!(csv.contains("nat,low,noDVS,"));
        assert!(csv.contains("nat,low,QDVS,"));
        assert!(csv.contains("nat,low,PDVS,"));
    }
}
