//! Integration tests for the `abdex` command-line binary.

use std::process::Command;

fn abdex() -> Command {
    Command::new(env!("CARGO_BIN_EXE_abdex"))
}

#[test]
fn help_prints_usage() {
    let out = abdex().arg("help").output().expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"));
    assert!(text.contains("sweep"));
}

#[test]
fn no_args_fails_with_usage() {
    let out = abdex().output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}

#[test]
fn unknown_command_fails() {
    let out = abdex().arg("frobnicate").output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn run_reports_metrics() {
    let out = abdex()
        .args([
            "run",
            "--benchmark",
            "nat",
            "--traffic",
            "low",
            "--cycles",
            "200000",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("mean power"));
    assert!(text.contains("throughput"));
}

#[test]
fn policies_lists_the_registry() {
    let out = abdex().arg("policies").output().expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for name in ["nodvs", "tdvs", "edvs", "combined", "queue", "proportional"] {
        assert!(text.contains(name), "missing policy '{name}'");
    }
    assert!(text.contains("threshold"));
    assert!(text.contains("kp"));
}

#[test]
fn run_accepts_policy_spec_grammar() {
    let out = abdex()
        .args([
            "run",
            "--policy",
            "queue:high=0.8,low=0.1",
            "--traffic",
            "low",
            "--cycles",
            "300000",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("QDVS"), "unexpected output: {text}");
}

#[test]
fn run_rejects_legacy_flags_with_spec_grammar() {
    // --window would be silently ignored here; the CLI must refuse
    // rather than run a different configuration than requested.
    let out = abdex()
        .args([
            "run", "--policy", "queue", "--window", "20000", "--cycles", "100000",
        ])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("--window"), "unhelpful error: {text}");
    assert!(
        text.contains("spec"),
        "should point at the spec grammar: {text}"
    );
}

#[test]
fn run_rejects_threshold_with_bare_edvs() {
    // EDVS has no threshold; accepting-and-dropping it would run a
    // different configuration than requested.
    let out = abdex()
        .args([
            "run",
            "--policy",
            "edvs",
            "--threshold",
            "500",
            "--cycles",
            "100000",
        ])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("--threshold"), "unhelpful error: {text}");
}

#[test]
fn commands_reject_options_they_would_ignore() {
    // `--policy` (singular) is not a sweep option; without this guard the
    // command would silently run the full default TDVS grid instead.
    let out = abdex()
        .args(["sweep", "--policy", "nodvs;proportional:kp=6"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("--policy"), "unhelpful error: {text}");

    let out = abdex()
        .args(["compare", "--benchmark", "nat"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--benchmark"));
}

#[test]
fn run_rejects_bad_policy_spec() {
    let out = abdex()
        .args(["run", "--policy", "tdvs:flux=9"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("flux"), "unhelpful error: {text}");
}

#[test]
fn sweep_over_policy_specs_renders_table() {
    let out = abdex()
        .args([
            "sweep",
            "--policies",
            "nodvs;proportional:kp=6",
            "--traffic",
            "low",
            "--cycles",
            "200000",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("policy_spec"));
    assert!(text.contains("nodvs"));
    assert!(text.contains("proportional:target=0.1,kp=6,ki=0.5,window=40000"));
}

#[test]
fn run_rejects_bad_benchmark() {
    let out = abdex()
        .args(["run", "--benchmark", "quake"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown benchmark"));
}

#[test]
fn trace_check_analyze_pipeline() {
    let dir = std::env::temp_dir().join(format!("abdex-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let trace_path = dir.join("trace.txt");

    let out = abdex()
        .args([
            "trace",
            "--cycles",
            "200000",
            "--out",
            trace_path.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(trace_path.exists());

    // A true assertion passes (exit 0)...
    let out = abdex()
        .args([
            "check",
            "--formula",
            "energy(forward[i+1]) - energy(forward[i]) >= 0",
            "--trace",
            trace_path.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("PASS"));

    // ...a false one fails (exit 1).
    let out = abdex()
        .args([
            "check",
            "--formula",
            "energy(forward[i+1]) - energy(forward[i]) < 0",
            "--trace",
            trace_path.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());

    // The analyzer prints a distribution table.
    let out = abdex()
        .args([
            "analyze",
            "--formula",
            "time(forward[i+10]) - time(forward[i]) dist== (0, 200, 20)",
            "--trace",
            trace_path.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("%"));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sweep_accepts_jobs_and_writes_json() {
    let dir = std::env::temp_dir().join(format!("abdex-cli-json-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let json_path = dir.join("sweep.json");

    let out = abdex()
        .args([
            "sweep",
            "--policies",
            "nodvs;queue",
            "--traffic",
            "low",
            "--cycles",
            "200000",
            "--jobs",
            "2",
            "--progress",
            "dot",
            "--json",
            json_path.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // The human table still lands on stdout, progress on stderr.
    assert!(String::from_utf8_lossy(&out.stdout).contains("policy_spec"));
    assert!(String::from_utf8_lossy(&out.stderr).contains("2 jobs"));

    let doc = std::fs::read_to_string(&json_path).expect("JSON written");
    assert!(doc.contains("\"kind\":\"spec_sweep\""), "{doc}");
    assert!(doc.contains("\"cells\":2"), "{doc}");
    assert!(doc.contains("\"mean_power_w\":"), "{doc}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn run_writes_experiment_json() {
    let dir = std::env::temp_dir().join(format!("abdex-cli-runjson-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let json_path = dir.join("run.json");

    let out = abdex()
        .args([
            "run",
            "--benchmark",
            "nat",
            "--traffic",
            "low",
            "--cycles",
            "200000",
            "--json",
            json_path.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = std::fs::read_to_string(&json_path).expect("JSON written");
    assert!(doc.contains("\"kind\":\"experiment\""), "{doc}");
    assert!(doc.contains("\"benchmark\":\"nat\""), "{doc}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unwritable_json_path_fails_before_the_batch_runs() {
    // The preflight must reject the path in milliseconds instead of
    // discovering it after a paper-length sweep; note the full-length
    // --cycles default would take minutes if the batch actually ran.
    let out = abdex()
        .args([
            "sweep",
            "--policies",
            "nodvs",
            "--json",
            "/no/such/dir/out.json",
        ])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("cannot write"), "unhelpful error: {text}");
    // The sweep never ran, so no table was printed.
    assert!(!String::from_utf8_lossy(&out.stdout).contains("policy_spec"));
}

#[test]
fn sweep_rejects_bad_progress_mode() {
    let out = abdex()
        .args(["sweep", "--progress", "loud", "--cycles", "100000"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("progress mode"), "unhelpful error: {text}");
}

#[test]
fn run_rejects_jobs_option_it_would_ignore() {
    // `run` is a single simulation; silently accepting --jobs would
    // suggest parallelism that does not exist.
    let out = abdex()
        .args(["run", "--jobs", "4", "--cycles", "100000"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--jobs"));
}

#[test]
fn codegen_emits_rust_source() {
    let out = abdex()
        .args([
            "codegen",
            "--formula",
            "cycle(deq[i]) - cycle(enq[i]) <= 50",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("fn main()"));
}

#[test]
fn run_accepts_traffic_spec_grammar() {
    // The acceptance spec of the traffic-API redesign: a model that did
    // not exist before the TrafficModel trait opened this axis.
    let out = abdex()
        .args([
            "run",
            "--traffic",
            "burst:on_mbps=1800,off_mbps=120,period_s=2",
            "--cycles",
            "300000",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("burst:"), "unexpected output: {text}");
    assert!(text.contains("mean power"), "unexpected output: {text}");
}

#[test]
fn traffics_lists_the_registry() {
    let out = abdex().arg("traffics").output().expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for name in [
        "low", "medium", "high", "mmpp", "diurnal", "burst", "flash", "constant", "trace",
    ] {
        assert!(text.contains(name), "missing traffic model '{name}'");
    }
    assert!(text.contains("on_mbps"));
    assert!(text.contains("peak_mbps"));
}

#[test]
fn benchmark_and_traffic_names_are_case_insensitive() {
    let out = abdex()
        .args([
            "run",
            "--benchmark",
            "NAT",
            "--traffic",
            "Low",
            "--policy",
            "QDVS",
            "--cycles",
            "200000",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn unknown_names_list_the_registries() {
    let out = abdex()
        .args(["run", "--traffic", "tsunami"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("tsunami"), "unhelpful error: {text}");
    assert!(text.contains("burst"), "should list traffic models: {text}");

    let out = abdex()
        .args(["run", "--benchmark", "quake"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("ipfwdr"), "should list benchmarks: {text}");

    let out = abdex()
        .args(["run", "--policy", "warp"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("tdvs"), "should list policies: {text}");
}

#[test]
fn sweep_over_traffic_specs_renders_table_and_json() {
    let dir = std::env::temp_dir().join(format!("abdex-cli-traffics-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let json_path = dir.join("traffics.json");

    let out = abdex()
        .args([
            "sweep",
            "--traffics",
            "low;constant:rate=500;burst:period_s=0.001",
            "--policy",
            "tdvs:threshold=1200",
            "--cycles",
            "200000",
            "--jobs",
            "2",
            "--json",
            json_path.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("traffic_spec"), "{text}");
    assert!(
        text.contains("constant:rate=500,size=576,ports=16"),
        "{text}"
    );

    let doc = std::fs::read_to_string(&json_path).expect("JSON written");
    assert!(doc.contains("\"kind\":\"traffic_sweep\""), "{doc}");
    assert!(doc.contains("\"schema_version\":9"), "{doc}");
    assert!(doc.contains("\"traffic_model\":\"burst\""), "{doc}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sweep_rejects_ambiguous_axis_combinations() {
    // Both axes at once: ambiguous.
    let out = abdex()
        .args(["sweep", "--policies", "nodvs", "--traffics", "low"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(
        text.contains("--policies") && text.contains("--traffics"),
        "{text}"
    );

    // --traffic (singular) would be silently ignored next to --traffics.
    let out = abdex()
        .args(["sweep", "--traffics", "low;high", "--traffic", "medium"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--traffic "));
}

#[test]
fn every_json_document_carries_the_schema_version() {
    let dir = std::env::temp_dir().join(format!("abdex-cli-schema-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");

    let run_json = dir.join("run.json");
    let out = abdex()
        .args([
            "run",
            "--traffic",
            "low",
            "--cycles",
            "200000",
            "--json",
            run_json.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let doc = std::fs::read_to_string(&run_json).expect("JSON written");
    assert!(doc.contains("\"schema_version\":9"), "{doc}");

    let sweep_json = dir.join("sweep.json");
    let out = abdex()
        .args([
            "sweep",
            "--policies",
            "nodvs",
            "--traffic",
            "low",
            "--cycles",
            "200000",
            "--json",
            sweep_json.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let doc = std::fs::read_to_string(&sweep_json).expect("JSON written");
    assert!(doc.contains("\"schema_version\":9"), "{doc}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn trace_replay_round_trips_through_the_cli() {
    // `abdex trace --out F` then `--traffic trace:path=F`: the recorded
    // workflow of paper §3.2, end to end through the open traffic API.
    let dir = std::env::temp_dir().join(format!("abdex-cli-replay-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let pkt_path = dir.join("packets.txt");

    // Record a packet trace with the library (the CLI's `trace` command
    // emits simulator event traces; packet recordings come from the
    // traffic API).
    let spec: abdex::TrafficSpec = "mmpp:rate=700".parse().unwrap();
    let recorded = abdex::traffic::RecordedTrace::record(
        spec.model().unwrap().stream(5),
        abdex::desim::SimTime::from_ms(2),
    );
    std::fs::write(&pkt_path, recorded.to_text()).expect("write packets");

    let out = abdex()
        .args([
            "run",
            "--traffic",
            &format!("trace:path={}", pkt_path.display()),
            "--cycles",
            "300000",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // A missing file fails with the unbuildable-spec error, not a panic
    // at parse time.
    let out = abdex()
        .args([
            "run",
            "--traffic",
            "trace:path=/no/such/file.txt",
            "--cycles",
            "1000",
        ])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn trace_generate_then_analyze_is_jobs_invariant() {
    // The PR-8 acceptance pipeline: synthesize a stochastic trace, then
    // analyze it — the schema-7 JSON document must be byte-identical
    // for any worker count.
    let dir = std::env::temp_dir().join(format!("abdex-cli-tracegen-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let trace_path = dir.join("t.trace");

    let out = abdex()
        .args([
            "trace",
            "generate",
            "--traffic",
            "stochastic:gap=pareto:alpha=1.3,size=lognormal:mu=6,sigma=1.2",
            "--cycles",
            "2000000",
            "-o",
            trace_path.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let header = std::fs::read_to_string(&trace_path).expect("trace written");
    assert!(header.starts_with("# abdex-trace v1\n"), "{header:.80}");
    assert!(
        header.contains("# traffic: stochastic:gap="),
        "missing provenance"
    );

    let analyze = |jobs: &str| {
        let out = abdex()
            .args([
                "trace",
                "analyze",
                trace_path.to_str().unwrap(),
                "--json",
                "-",
                "--jobs",
                jobs,
            ])
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        out.stdout
    };
    let serial = analyze("1");
    let parallel = analyze("4");
    assert_eq!(serial, parallel, "analysis must not depend on --jobs");
    let doc = String::from_utf8_lossy(&serial);
    assert!(doc.contains("\"schema_version\":9"), "{doc}");
    assert!(doc.contains("\"kind\":\"trace_analysis\""), "{doc}");
    assert!(doc.contains("\"gap_us\":{\"mean\":"), "{doc}");
    assert!(doc.contains("\"hurst\":"), "{doc}");
    // The human table moved to stderr (--json - owns stdout).
    let table = abdex()
        .args(["trace", "analyze", trace_path.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(table.status.success());
    let text = String::from_utf8_lossy(&table.stdout);
    assert!(text.contains("gap_us"), "{text}");
    assert!(text.contains("hurst estimate"), "{text}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn generated_trace_replays_byte_identically() {
    // Simulating `trace:file=t.trace` must reproduce the direct
    // stochastic run bit-for-bit: the recording covers every arrival
    // the simulator would consume at the same seed and horizon.
    let dir = std::env::temp_dir().join(format!("abdex-cli-replayid-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let trace_path = dir.join("t.trace");
    let spec = "stochastic:gap=pareto:alpha=1.3,size=lognormal:mu=6,sigma=1.2";
    let cycles = "400000";
    let seed = "9";

    let out = abdex()
        .args([
            "trace",
            "generate",
            "--traffic",
            spec,
            "--cycles",
            cycles,
            "--seed",
            seed,
            "-o",
            trace_path.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let run = |traffic: &str| {
        let out = abdex()
            .args([
                "run",
                "--traffic",
                traffic,
                "--cycles",
                cycles,
                "--seed",
                seed,
                "--json",
                "-",
            ])
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let doc = String::from_utf8_lossy(&out.stdout).into_owned();
        // The documents differ only in their traffic spec string;
        // every measured quantity lives under "metrics".
        let start = doc.find("\"metrics\":").expect("metrics object");
        doc[start..].to_owned()
    };
    let direct = run(spec);
    let replayed = run(&format!("trace:file={}", trace_path.display()));
    assert_eq!(direct, replayed, "replay must be byte-identical");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn replicate_reports_per_metric_intervals() {
    let dir = std::env::temp_dir().join(format!("abdex-cli-replicate-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let json_path = dir.join("replicate.json");

    let out = abdex()
        .args([
            "replicate",
            "--benchmark",
            "ipfwdr",
            "--traffic",
            "high",
            "--policy",
            "tdvs:threshold=1400",
            "--cycles",
            "200000",
            "--seeds",
            "4",
            "--ci",
            "99",
            "--jobs",
            "2",
            "--json",
            json_path.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("4 replicates of seed 42"), "{text}");
    assert!(text.contains("99% CI"), "{text}");
    assert!(text.contains("mean_power_w"), "{text}");

    let doc = std::fs::read_to_string(&json_path).expect("JSON written");
    assert!(doc.contains("\"kind\":\"replicated_run\""), "{doc}");
    assert!(doc.contains("\"schema_version\":9"), "{doc}");
    assert!(doc.contains("\"seeds\":4"), "{doc}");
    assert!(doc.contains("\"ci_level\":99"), "{doc}");
    assert!(doc.contains("\"half_width\":"), "{doc}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn run_with_seeds_replicates_serially() {
    let out = abdex()
        .args([
            "run",
            "--traffic",
            "low",
            "--cycles",
            "200000",
            "--seeds",
            "3",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("3 replicates"), "{text}");
    assert!(text.contains("half_width"), "{text}");
}

#[test]
fn replication_flag_misuse_is_rejected() {
    // --ci without enough replicates would report a zero-width interval.
    let out = abdex()
        .args(["run", "--cycles", "1000", "--ci", "95"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--seeds >= 2"));

    // Zero replicates is meaningless.
    let out = abdex()
        .args(["sweep", "--cycles", "1000", "--seeds", "0"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("at least one replicate"));

    // `replicate` exists to produce intervals; one seed cannot.
    let out = abdex()
        .args(["replicate", "--cycles", "1000", "--seeds", "1"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("abdex run"));

    // Unsupported level names the supported ones.
    let out = abdex()
        .args([
            "replicate",
            "--cycles",
            "1000",
            "--seeds",
            "2",
            "--ci",
            "80",
        ])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("90, 95, 99"));
}

#[test]
fn replicated_sweep_writes_axis_tagged_document() {
    let dir = std::env::temp_dir().join(format!("abdex-cli-repsweep-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let json_path = dir.join("repsweep.json");

    let out = abdex()
        .args([
            "sweep",
            "--policies",
            "nodvs;queue",
            "--traffic",
            "low",
            "--cycles",
            "150000",
            "--seeds",
            "2",
            "--jobs",
            "2",
            "--json",
            json_path.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("policy_spec"), "{text}");
    assert!(text.contains('±'), "{text}");

    let doc = std::fs::read_to_string(&json_path).expect("JSON written");
    assert!(doc.contains("\"kind\":\"replicated_sweep\""), "{doc}");
    assert!(doc.contains("\"axis\":\"policies\""), "{doc}");
    assert!(doc.contains("\"seeds\":2"), "{doc}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn scenario_list_shows_the_builtin_library() {
    let out = abdex()
        .args(["scenario", "list"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for name in ["diurnal-day", "flash-noon", "burst-storm", "steady-cbr"] {
        assert!(text.contains(name), "missing scenario '{name}'");
    }
    assert!(text.contains("schedule:segments=["), "{text}");
}

#[test]
fn scenario_run_rejects_unknown_names_and_bad_subcommands() {
    let out = abdex()
        .args(["scenario", "run", "no-such-scenario", "--cycles", "1000"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("no-such-scenario"), "{text}");
    assert!(text.contains("diurnal-day"), "should list builtins: {text}");

    let out = abdex()
        .args(["scenario", "explode"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("run"),
        "should name the subcommands"
    );

    // Options it would ignore are rejected like everywhere else.
    let out = abdex()
        .args(["scenario", "run", "steady-cbr", "--traffic", "low"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--traffic"));
}

#[test]
fn scenario_run_reports_segments_and_writes_schema_6_json() {
    // The PR-5 acceptance gate, CLI edition: `scenario run diurnal-day
    // --seeds K --ci 95 --json -` puts a schema-6 scenario document
    // with per-segment and whole-run mean±half-width metrics on
    // stdout, byte-identical between --jobs 1 and --jobs 4. (--cycles
    // shrinks the horizon to keep the gate fast; determinism.rs guards
    // the library-level multi-segment fold as well.)
    let run = |jobs: &str| {
        let out = abdex()
            .args([
                "scenario",
                "run",
                "diurnal-day",
                "--cycles",
                "2500000",
                "--seeds",
                "4",
                "--ci",
                "95",
                "--jobs",
                jobs,
                "--json",
                "-",
            ])
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        (
            String::from_utf8_lossy(&out.stdout).into_owned(),
            String::from_utf8_lossy(&out.stderr).into_owned(),
        )
    };
    let (serial_doc, serial_err) = run("1");
    let (parallel_doc, _) = run("4");

    // stdout is exactly one JSON document (pipeable without a temp
    // file); the human table moved to stderr.
    assert!(serial_doc.starts_with('{'), "{serial_doc}");
    assert_eq!(
        serial_doc.trim_end().matches('\n').count(),
        0,
        "{serial_doc}"
    );
    assert!(serial_err.contains("whole-run"), "{serial_err}");
    assert!(serial_err.contains("policy nodvs"), "{serial_err}");

    for key in [
        "\"schema_version\":9",
        "\"kind\":\"scenario\"",
        "\"scenario\":\"diurnal-day\"",
        "\"seeds\":4",
        "\"ci_level\":95",
        "\"plan\":[",
        "\"segments\":2",
        "\"whole\":{",
        "\"half_width\":",
        "\"failed\":0",
    ] {
        assert!(serial_doc.contains(key), "missing {key} in {serial_doc}");
    }
    // 2.5e6 cycles clip diurnal-day to two windows; every policy block
    // carries one metrics object per window plus the whole-run one.
    assert_eq!(
        serial_doc.matches("\"start_cycles\":2000000").count(),
        1 + 3
    );

    assert_eq!(
        serial_doc, parallel_doc,
        "scenario JSON diverged across --jobs"
    );
}

#[test]
fn scenario_run_accepts_a_toml_file() {
    let dir = std::env::temp_dir().join(format!("abdex-cli-scenario-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let path = dir.join("my-scenario.toml");
    std::fs::write(
        &path,
        "name = \"file-scenario\"\n\
         summary = \"from disk\"\n\
         traffic = \"schedule:segments=[low@0..150000; constant:rate=900@150000..]\"\n\
         policies = \"nodvs\"\n\
         cycles = 300000\n\
         seeds = 2\n",
    )
    .expect("write scenario file");

    let out = abdex()
        .args(["scenario", "run", path.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("scenario file-scenario"), "{text}");
    assert!(text.contains("constant:rate=900"), "{text}");
    assert!(text.contains("whole-run"), "{text}");

    // A malformed file reports the offending key, not a panic.
    let bad = dir.join("bad.toml");
    std::fs::write(&bad, "name = \"x\"\ntraffic = \"low\"\n").expect("write bad file");
    let out = abdex()
        .args(["scenario", "run", bad.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("policies"));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn json_dash_pipes_every_command_kind() {
    // `--json -` must put exactly the document on stdout for the other
    // subcommands too (the scenario test covers `scenario run`).
    let out = abdex()
        .args([
            "run",
            "--traffic",
            "low",
            "--cycles",
            "200000",
            "--json",
            "-",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let doc = String::from_utf8_lossy(&out.stdout);
    assert!(doc.starts_with('{'), "{doc}");
    assert!(doc.contains("\"kind\":\"experiment\""), "{doc}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("mean power"));

    let out = abdex()
        .args([
            "sweep",
            "--policies",
            "nodvs",
            "--traffic",
            "low",
            "--cycles",
            "200000",
            "--json",
            "-",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let doc = String::from_utf8_lossy(&out.stdout);
    assert!(doc.starts_with('{'), "{doc}");
    assert!(doc.contains("\"kind\":\"spec_sweep\""), "{doc}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("policy_spec"));
}

#[test]
fn replicated_compare_is_bit_identical_across_jobs() {
    // The PR-4 acceptance gate: `compare --seeds K --ci 95 --json` must
    // produce a schema-6 `replicated_compare` document whose per-cell
    // means and half-widths are byte-for-byte identical between
    // `--jobs 1` and `--jobs N`.
    let dir = std::env::temp_dir().join(format!("abdex-cli-repcmp-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");

    let run = |jobs: &str, path: &std::path::Path| {
        let out = abdex()
            .args([
                "compare",
                "--traffics",
                "low",
                "--cycles",
                "150000",
                "--seeds",
                "3",
                "--ci",
                "95",
                "--jobs",
                jobs,
                "--json",
                path.to_str().unwrap(),
            ])
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };

    let serial_json = dir.join("serial.json");
    let parallel_json = dir.join("parallel.json");
    let serial_table = run("1", &serial_json);
    let parallel_table = run("4", &parallel_json);

    assert_eq!(serial_table, parallel_table, "tables diverged");
    let serial = std::fs::read_to_string(&serial_json).expect("JSON written");
    let parallel = std::fs::read_to_string(&parallel_json).expect("JSON written");
    assert!(
        serial.contains("\"kind\":\"replicated_compare\""),
        "{serial}"
    );
    assert!(serial.contains("\"schema_version\":9"), "{serial}");
    assert!(serial.contains("\"half_width\":"), "{serial}");
    assert_eq!(serial, parallel, "JSON documents diverged");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fleet_listings_show_dispatchers_and_policies() {
    let out = abdex()
        .args(["fleet", "dispatchers"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for name in ["round-robin", "hash", "least-loaded"] {
        assert!(text.contains(name), "missing dispatcher '{name}': {text}");
    }
    assert!(text.contains("flows"), "{text}");

    let out = abdex()
        .args(["fleet", "policies"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for name in ["none", "static-cap", "cap-realloc"] {
        assert!(text.contains(name), "missing fleet policy '{name}': {text}");
    }
    assert!(text.contains("budget"), "{text}");
    assert!(text.contains("period"), "{text}");
}

#[test]
fn fleet_run_rejects_bad_specs_and_misuse() {
    // An unknown dispatcher fails fast and lists the registered names.
    let out = abdex()
        .args(["fleet", "run", "--dispatch", "teleport", "--cycles", "1000"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("teleport"), "{text}");
    assert!(text.contains("least-loaded"), "should list known: {text}");

    // Same for fleet policies.
    let out = abdex()
        .args([
            "fleet",
            "run",
            "--fleet-policy",
            "chaos",
            "--cycles",
            "1000",
        ])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("chaos"), "{text}");
    assert!(text.contains("cap-realloc"), "should list known: {text}");

    // An empty fleet is refused before anything runs.
    let out = abdex()
        .args(["fleet", "run", "--chips", "0"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--chips"));

    // Options it would ignore are rejected like everywhere else.
    let out = abdex()
        .args(["fleet", "run", "--threshold", "900"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--threshold"));

    let out = abdex()
        .args(["fleet", "explode"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("dispatchers"),
        "should name the subcommands"
    );
}

#[test]
fn fleet_run_reports_table_and_writes_schema_6_json() {
    let out = abdex()
        .args([
            "fleet",
            "run",
            "--chips",
            "4",
            "--dispatch",
            "least-loaded",
            "--fleet-policy",
            "static-cap:budget=5",
            "--cycles",
            "200000",
            "--json",
            "-",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = String::from_utf8_lossy(&out.stdout);
    assert!(doc.starts_with('{'), "{doc}");
    for key in [
        "\"schema_version\":9",
        "\"kind\":\"fleet\"",
        "\"chips\":4",
        "\"dispatch\":\"least-loaded:flows=256\"",
        "\"fleet_policy\":\"static-cap:budget=5\"",
        "\"metrics\":{",
        "\"imbalance\":{",
        "\"per_chip\":[",
        "\"share\":",
        "\"queue_depth\":{\"p50\":",
        "\"failed\":0",
    ] {
        assert!(doc.contains(key), "missing {key} in {doc}");
    }
    // The human table moves to stderr under `--json -`.
    let table = String::from_utf8_lossy(&out.stderr);
    assert!(table.contains("fleet chips=4"), "{table}");
    assert!(table.contains("imbalance"), "{table}");
    assert!(table.contains("q_p99"), "{table}");
}

#[test]
fn fleet_run_is_bit_identical_across_jobs() {
    // The PR-6 acceptance gate, CLI edition: `fleet run --chips 64
    // --dispatch least-loaded --seeds 4 --ci 95 --json -` puts a
    // schema-6 fleet document on stdout, byte-identical between
    // --jobs 1 and --jobs 4. (--cycles shrinks the horizon to keep the
    // gate fast; determinism.rs guards the library-level fold as
    // well.)
    let run = |jobs: &str| {
        let out = abdex()
            .args([
                "fleet",
                "run",
                "--chips",
                "64",
                "--dispatch",
                "least-loaded",
                "--seeds",
                "4",
                "--ci",
                "95",
                "--cycles",
                "100000",
                "--jobs",
                jobs,
                "--json",
                "-",
            ])
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        (
            String::from_utf8_lossy(&out.stdout).into_owned(),
            String::from_utf8_lossy(&out.stderr).into_owned(),
        )
    };
    let (serial_doc, serial_table) = run("1");
    let (parallel_doc, parallel_table) = run("4");
    assert!(serial_doc.contains("\"kind\":\"fleet\""), "{serial_doc}");
    assert!(serial_doc.contains("\"chips\":64"), "{serial_doc}");
    assert!(serial_doc.contains("\"seeds\":4"), "{serial_doc}");
    assert!(serial_doc.contains("\"ci_level\":95"), "{serial_doc}");
    assert_eq!(serial_doc, parallel_doc, "JSON documents diverged");
    assert_eq!(serial_table, parallel_table, "tables diverged");
}

#[test]
fn run_record_exports_schema_6_jsonl_without_touching_stdout() {
    let dir = std::env::temp_dir().join(format!("abdex-cli-record-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let record_path = dir.join("run.jsonl");

    let base_args = ["run", "--traffic", "low", "--cycles", "200000"];
    let plain = abdex().args(base_args).output().expect("binary runs");
    assert!(plain.status.success());

    let out = abdex()
        .args(base_args)
        .args(["--record", record_path.to_str().unwrap(), "--obs-stats"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // Recording is pure observation: stdout is byte-identical to the
    // unrecorded invocation (the export note and stats go to stderr).
    assert_eq!(plain.stdout, out.stdout, "stdout changed under --record");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("kernel stats"), "{err}");
    assert!(err.contains("events processed"), "{err}");
    assert!(err.contains("sim cycles/s"), "{err}");

    let doc = std::fs::read_to_string(&record_path).expect("JSONL written");
    let lines: Vec<&str> = doc.lines().collect();
    assert!(lines.len() > 1, "header plus at least one sample: {doc}");
    assert!(lines[0].contains("\"schema_version\":9"), "{}", lines[0]);
    assert!(lines[0].contains("\"kind\":\"record\""), "{}", lines[0]);
    assert!(lines[0].contains("\"source\":\"run\""), "{}", lines[0]);
    assert!(lines[0].contains("\"power_w\""), "{}", lines[0]);
    assert!(
        lines[1].starts_with("{\"series\":0,\"channel\":"),
        "{}",
        lines[1]
    );
    assert!(doc.contains("\"channel\":\"queue_depth\""), "{doc}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn record_flag_is_rejected_where_it_would_be_ignored() {
    // Sweeps do not record; silently accepting --record would promise
    // an export that never happens.
    let out = abdex()
        .args(["sweep", "--record", "/tmp/x.jsonl", "--cycles", "1000"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--record"));

    // An unwritable record path fails in the preflight, before the run.
    let out = abdex()
        .args(["run", "--record", "/no/such/dir/out.jsonl"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot write"));
}

#[test]
fn recorded_jsonl_is_byte_identical_across_jobs() {
    // The --record acceptance gate, CLI edition: the exported document
    // is a pure function of the batch description, so fleet and
    // scenario exports are byte-identical between --jobs 1 and
    // --jobs 4 (determinism.rs guards the library-level recordings).
    let dir = std::env::temp_dir().join(format!("abdex-cli-recjobs-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");

    let fleet = |jobs: &str, path: &std::path::Path| {
        let out = abdex()
            .args([
                "fleet",
                "run",
                "--chips",
                "3",
                "--seeds",
                "2",
                "--cycles",
                "150000",
                "--jobs",
                jobs,
                "--record",
                path.to_str().unwrap(),
            ])
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        std::fs::read_to_string(path).expect("JSONL written")
    };
    let serial = fleet("1", &dir.join("fleet1.jsonl"));
    let parallel = fleet("4", &dir.join("fleet4.jsonl"));
    assert!(serial.contains("\"source\":\"fleet\""), "{serial}");
    assert!(serial.contains("\"rep1/chip2\""), "{serial}");
    assert_eq!(serial, parallel, "fleet record diverged across --jobs");

    let scenario = |jobs: &str, path: &std::path::Path| {
        let out = abdex()
            .args([
                "scenario",
                "run",
                "steady-cbr",
                "--seeds",
                "2",
                "--cycles",
                "150000",
                "--jobs",
                jobs,
                "--record",
                path.to_str().unwrap(),
            ])
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        std::fs::read_to_string(path).expect("JSONL written")
    };
    let serial = scenario("1", &dir.join("scen1.jsonl"));
    let parallel = scenario("4", &dir.join("scen4.jsonl"));
    assert!(serial.contains("\"source\":\"scenario\""), "{serial}");
    assert!(serial.contains("/rep1\""), "{serial}");
    assert_eq!(serial, parallel, "scenario record diverged across --jobs");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn progress_stats_reports_worker_telemetry() {
    let out = abdex()
        .args([
            "replicate",
            "--traffic",
            "low",
            "--cycles",
            "150000",
            "--seeds",
            "4",
            "--jobs",
            "2",
            "--progress",
            "stats",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("batch stats:"), "{err}");
    assert!(err.contains("4 jobs"), "{err}");
    assert!(err.contains("workers:"), "{err}");
    assert!(err.contains("queue wait"), "{err}");
}

#[test]
fn cached_sweep_warm_pass_hits_everything_with_identical_stdout() {
    // The ISSUE's acceptance gate: a warm re-run of a cached sweep
    // performs zero simulations (all hits, zero misses on stderr) and
    // its stdout — tables and `--json -` document alike — is
    // byte-identical to the cold pass.
    let dir = std::env::temp_dir().join(format!("abdex-cli-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let cache_dir = dir.join("store");
    let pass = || {
        abdex()
            .args([
                "sweep",
                "--seeds",
                "2",
                "--cycles",
                "200000",
                "--json",
                "-",
                "--cache-dir",
                cache_dir.to_str().unwrap(),
            ])
            .output()
            .expect("binary runs")
    };
    let cold = pass();
    assert!(
        cold.status.success(),
        "{}",
        String::from_utf8_lossy(&cold.stderr)
    );
    let cold_err = String::from_utf8_lossy(&cold.stderr);
    assert!(
        cold_err.contains("cache: 0 hits, 32 misses, 32 stores (0.0% hit rate)"),
        "{cold_err}"
    );

    let warm = pass();
    assert!(
        warm.status.success(),
        "{}",
        String::from_utf8_lossy(&warm.stderr)
    );
    let warm_err = String::from_utf8_lossy(&warm.stderr);
    assert!(
        warm_err.contains("cache: 32 hits, 0 misses, 0 stores (100.0% hit rate)"),
        "{warm_err}"
    );
    assert_eq!(cold.stdout, warm.stdout, "cached stdout diverged");

    // The stats subcommand reports the persisted lifetime tallies.
    let stats = abdex()
        .args(["cache", "stats", "--cache-dir", cache_dir.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(stats.status.success());
    let text = String::from_utf8_lossy(&stats.stdout);
    assert!(text.contains("entries   : 32"), "{text}");
    assert!(
        text.contains("lifetime  : 32 hits, 32 misses, 32 stores (50.0% hit rate)"),
        "{text}"
    );

    // gc to zero bytes evicts everything; clear on the empty store is
    // benign.
    let gc = abdex()
        .args([
            "cache",
            "gc",
            "--max-bytes",
            "0",
            "--cache-dir",
            cache_dir.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(gc.status.success());
    assert!(
        String::from_utf8_lossy(&gc.stdout).contains("evicted 32 entries"),
        "{}",
        String::from_utf8_lossy(&gc.stdout)
    );
    let clear = abdex()
        .args(["cache", "clear", "--cache-dir", cache_dir.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(clear.status.success());
    assert!(
        String::from_utf8_lossy(&clear.stdout).contains("removed 0 entries"),
        "{}",
        String::from_utf8_lossy(&clear.stdout)
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_flag_conflicts_and_misuse_are_rejected() {
    // --cache and --no-cache together is a contradiction.
    let out = abdex()
        .args(["run", "--cycles", "100000", "--cache", "--no-cache"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("contradict"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // gc without a budget has nothing to enforce.
    let out = abdex().args(["cache", "gc"]).output().expect("binary runs");
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--max-bytes"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Unknown cache subcommands are named in the error.
    let out = abdex()
        .args(["cache", "defrost"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("defrost"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn profile_never_touches_stdout_on_run_sweep_or_fleet() {
    // The profiler's hard invariant: arming `--profile` (and
    // `--profile-summary`) changes nothing on stdout — the trace goes
    // to its file, the summary to stderr. Pinned across the three
    // execution shapes: a serial run, a pooled sweep (with a cold
    // cache, so cache-lookup spans exist), and a fleet run.
    let dir = std::env::temp_dir().join(format!("abdex-cli-prof-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let compare = |label: &str, args: &[&str], extra: &[&str]| {
        let plain = abdex().args(args).output().expect("binary runs");
        assert!(
            plain.status.success(),
            "{label}: {}",
            String::from_utf8_lossy(&plain.stderr)
        );
        let profiled = abdex()
            .args(args)
            .args(extra)
            .output()
            .expect("binary runs");
        assert!(
            profiled.status.success(),
            "{label}: {}",
            String::from_utf8_lossy(&profiled.stderr)
        );
        assert_eq!(
            plain.stdout, profiled.stdout,
            "{label}: stdout changed under --profile"
        );
        String::from_utf8_lossy(&profiled.stderr).into_owned()
    };

    let run_trace = dir.join("run.prof.json");
    let err = compare(
        "run",
        &["run", "--traffic", "low", "--cycles", "150000"],
        &[
            "--profile",
            run_trace.to_str().unwrap(),
            "--profile-summary",
        ],
    );
    assert!(err.contains("wrote Chrome trace"), "{err}");
    assert!(err.contains("profile:"), "{err}");
    assert!(err.contains("phase"), "{err}");

    let sweep_trace = dir.join("sweep.prof.json");
    let cache_dir = dir.join("store");
    compare(
        "sweep",
        &[
            "sweep",
            "--policies",
            "nodvs;tdvs:threshold=1400",
            "--cycles",
            "120000",
        ],
        &[
            "--cache-dir",
            cache_dir.to_str().unwrap(),
            "--profile",
            sweep_trace.to_str().unwrap(),
        ],
    );
    // The sweep trace is a structurally valid Chrome Trace Event
    // document carrying the pipeline's phases.
    let doc = std::fs::read_to_string(&sweep_trace).expect("trace written");
    assert!(doc.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
    assert!(doc.trim_end().ends_with("]}"), "{doc}");
    for span in [
        "parse",
        "plan",
        "simulate",
        "fold",
        "render",
        "cache.lookup",
    ] {
        assert!(
            doc.contains(&format!("\"name\":\"{span}")),
            "no {span} span: {doc}"
        );
    }
    assert!(doc.contains("\"ph\":\"X\""), "{doc}");
    assert!(
        doc.contains("\"ph\":\"C\""),
        "counter events missing: {doc}"
    );
    assert!(doc.contains("\"dur\":"), "{doc}");

    let fleet_trace = dir.join("fleet.prof.json");
    compare(
        "fleet",
        &["fleet", "run", "--chips", "2", "--cycles", "120000"],
        &["--profile", fleet_trace.to_str().unwrap()],
    );
    let doc = std::fs::read_to_string(&fleet_trace).expect("trace written");
    assert!(doc.contains("\"name\":\"simulate\""), "{doc}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn profile_flag_is_global_and_preflighted() {
    // Every subcommand accepts the pair — including the flagless
    // listing commands.
    let out = abdex()
        .args(["policies", "--profile-summary"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("profile:"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // An unwritable trace path fails in the preflight, before a
    // potentially long batch runs.
    let out = abdex()
        .args([
            "run",
            "--cycles",
            "100000",
            "--profile",
            "/no/such/dir/p.json",
        ])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("cannot write"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn obs_summarize_json_is_byte_identical_across_jobs() {
    // The analyzer acceptance gate: `obs summarize --json -` emits a
    // schema-9 document bit-identical between --jobs 1 and --jobs 4.
    let dir = std::env::temp_dir().join(format!("abdex-cli-summ-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let record_path = dir.join("rec.jsonl");

    let out = abdex()
        .args([
            "replicate",
            "--traffic",
            "low",
            "--cycles",
            "200000",
            "--seeds",
            "3",
            "--record",
            record_path.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let summarize = |jobs: &str| {
        let out = abdex()
            .args([
                "obs",
                "summarize",
                record_path.to_str().unwrap(),
                "--json",
                "-",
                "--jobs",
                jobs,
            ])
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        // `--json -` moves the human table to stderr.
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("record summary"),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let serial = summarize("1");
    let parallel = summarize("4");
    assert_eq!(serial, parallel, "obs_summary diverged across --jobs");
    assert!(serial.contains("\"schema_version\":9"), "{serial}");
    assert!(serial.contains("\"kind\":\"obs_summary\""), "{serial}");
    assert!(serial.contains("\"channel\":\"power_w\""), "{serial}");
    assert!(serial.contains("\"p99\":"), "{serial}");

    // The human table stands alone too.
    let table = abdex()
        .args(["obs", "summarize", record_path.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(table.status.success());
    let text = String::from_utf8_lossy(&table.stdout);
    assert!(
        text.contains("record summary: source run, 3 series"),
        "{text}"
    );
    assert!(text.contains("power_w"), "{text}");

    // Damaged or non-record input is rejected with a pointed error.
    let bogus = dir.join("bogus.jsonl");
    std::fs::write(&bogus, "{\"kind\":\"other\"}\n").unwrap();
    let out = abdex()
        .args(["obs", "summarize", bogus.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("not a record document"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn progress_stats_reports_kernel_tallies() {
    // `--progress stats` pairs the runner-level telemetry with the
    // summed kernel counters of the batch's simulations.
    let out = abdex()
        .args([
            "replicate",
            "--traffic",
            "low",
            "--cycles",
            "150000",
            "--seeds",
            "4",
            "--jobs",
            "2",
            "--progress",
            "stats",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("kernel:"), "{err}");
    assert!(err.contains("events processed"), "{err}");
    assert!(err.contains("summed peak heap"), "{err}");
}
