//! Regression guard for the runner's core contract: a sweep run with
//! one worker and with N workers must produce identical tables and
//! bit-identical metrics for a fixed seed. Parallelism must never leak
//! into results — for the paper's traffic levels and for every
//! spec-described traffic model alike.

use abdex::compare::{try_compare_policies, ComparisonConfig};
use abdex::fleet::{chip_seed, run_fleet, FleetConfig};
use abdex::json::{fleet_json, scenario_json};
use abdex::replicate::{try_replicated_compare, try_replicated_sweep_tdvs};
use abdex::scenario::{try_run_scenario, Scenario, ScenarioRun};
use abdex::sweep::{try_sweep_specs, try_sweep_tdvs, try_sweep_traffics};
use abdex::tables::{
    render_comparison, render_fleet, render_replicated_comparison, render_replicated_sweep,
    render_scenario, render_spec_sweep, render_sweep, render_traffic_sweep,
};
use abdex::{
    ConfidenceLevel, GridCell, JobSpec, PolicyComparison, PolicySpec, ReplicatedComparison,
    ReplicatedGridCell, Runner, SpecCell, TdvsGrid, TrafficCell, TrafficSpec,
};
use nepsim::Benchmark;
use traffic::TrafficLevel;

const CYCLES: u64 = 300_000;
const SEED: u64 = 17;

fn grid() -> TdvsGrid {
    TdvsGrid {
        thresholds_mbps: vec![1000.0, 1400.0],
        windows_cycles: vec![20_000, 40_000],
    }
}

fn tdvs_cells(workers: usize) -> Vec<GridCell> {
    try_sweep_tdvs(
        &Runner::new().with_workers(workers),
        Benchmark::Ipfwdr,
        &TrafficLevel::High.into(),
        &grid(),
        CYCLES,
        SEED,
    )
    .into_iter()
    .map(|o| o.expect("no cell failed"))
    .collect()
}

#[test]
fn tdvs_sweep_is_bit_identical_across_worker_counts() {
    let serial = tdvs_cells(1);
    for workers in [2, 4] {
        let parallel = tdvs_cells(workers);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.threshold_mbps, p.threshold_mbps);
            assert_eq!(s.window_cycles, p.window_cycles);
            assert_eq!(
                s.result.sim.forwarded_packets,
                p.result.sim.forwarded_packets
            );
            assert_eq!(s.result.sim.total_switches, p.result.sim.total_switches);
            assert_eq!(
                s.result.p80_power_w().to_bits(),
                p.result.p80_power_w().to_bits(),
                "power diverged at {} Mbps / {} cycles with {workers} workers",
                s.threshold_mbps,
                s.window_cycles
            );
            assert_eq!(
                s.result.p80_throughput_mbps().to_bits(),
                p.result.p80_throughput_mbps().to_bits()
            );
        }
        // The rendered table — what the paper's figures are built from —
        // must be byte-for-byte identical too.
        assert_eq!(render_sweep(&serial), render_sweep(&parallel));
    }
}

#[test]
fn spec_sweep_is_bit_identical_across_worker_counts() {
    let specs: Vec<PolicySpec> = ["nodvs", "tdvs:threshold=1400", "queue", "proportional"]
        .iter()
        .map(|s| s.parse().unwrap())
        .collect();
    let run = |workers: usize| -> Vec<SpecCell> {
        try_sweep_specs(
            &Runner::new().with_workers(workers),
            Benchmark::Ipfwdr,
            // Run the policy sweep on a model that did not exist before
            // the traffic API opened: determinism must hold for
            // spec-built generators exactly as for the paper levels.
            &"burst:on_mbps=1800,off_mbps=120,period_s=0.002"
                .parse()
                .unwrap(),
            &specs,
            CYCLES,
            SEED,
        )
        .into_iter()
        .map(|o| o.expect("no cell failed"))
        .collect()
    };
    let serial = run(1);
    let parallel = run(4);
    assert_eq!(render_spec_sweep(&serial), render_spec_sweep(&parallel));
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.spec, p.spec);
        assert_eq!(
            s.result.sim.mean_power_w().to_bits(),
            p.result.sim.mean_power_w().to_bits()
        );
    }
}

#[test]
fn comparison_is_bit_identical_across_worker_counts() {
    let cfg = ComparisonConfig {
        cycles: CYCLES,
        seed: SEED,
        ..ComparisonConfig::default()
    };
    let run = |workers: usize| -> PolicyComparison {
        let (cmp, errors) = try_compare_policies(
            &Runner::new().with_workers(workers),
            &[Benchmark::Ipfwdr, Benchmark::Nat],
            &[TrafficLevel::Low.into()],
            &cfg,
        );
        assert!(errors.is_empty());
        cmp
    };
    let serial = run(1);
    let parallel = run(3);
    assert_eq!(serial.rows.len(), parallel.rows.len());
    assert_eq!(render_comparison(&serial), render_comparison(&parallel));
    for (s, p) in serial.rows.iter().zip(&parallel.rows) {
        assert_eq!(s.policy, p.policy);
        assert_eq!(
            s.result.sim.total_energy_uj().to_bits(),
            p.result.sim.total_energy_uj().to_bits()
        );
    }
}

#[test]
fn traffic_sweep_is_bit_identical_across_worker_counts() {
    // One spec per generator family, including every model added by the
    // open traffic API.
    let traffics: Vec<TrafficSpec> = [
        "low",
        "mmpp:rate=900,burstiness=1.3",
        "burst:on_mbps=1800,off_mbps=120,period_s=0.002",
        "flash:base_mbps=300,peak_mbps=1500,at_ms=1,ramp_ms=0.5,hold_ms=1",
        "constant:rate=700",
    ]
    .iter()
    .map(|s| s.parse().unwrap())
    .collect();
    let run = |workers: usize| -> Vec<TrafficCell> {
        try_sweep_traffics(
            &Runner::new().with_workers(workers),
            Benchmark::Ipfwdr,
            &traffics,
            &PolicySpec::parse("tdvs:threshold=1200").unwrap(),
            CYCLES,
            SEED,
        )
        .into_iter()
        .map(|o| o.expect("no cell failed"))
        .collect()
    };
    let serial = run(1);
    let parallel = run(4);
    assert_eq!(
        render_traffic_sweep(&serial),
        render_traffic_sweep(&parallel)
    );
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.spec, p.spec);
        assert_eq!(
            s.result.sim.forwarded_packets, p.result.sim.forwarded_packets,
            "{} diverged",
            s.spec
        );
        assert_eq!(
            s.result.sim.total_energy_uj().to_bits(),
            p.result.sim.total_energy_uj().to_bits(),
            "{} diverged",
            s.spec
        );
    }
}

#[test]
fn replicated_tdvs_sweep_is_bit_identical_across_worker_counts() {
    // The PR-4 contract: a k-seed replicated grid folds per-cell means
    // and confidence half-widths that are bit-identical for any worker
    // count — parallelism must not leak into the statistics any more
    // than into a single run.
    let seeds = 3;
    let run = |workers: usize| -> Vec<ReplicatedGridCell> {
        try_replicated_sweep_tdvs(
            &Runner::new().with_workers(workers),
            Benchmark::Ipfwdr,
            &TrafficLevel::High.into(),
            &grid(),
            CYCLES,
            SEED,
            seeds,
        )
        .into_iter()
        .map(|o| o.expect("no cell failed"))
        .collect()
    };
    let serial = run(1);
    for workers in [2, 5] {
        let parallel = run(workers);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.threshold_mbps, p.threshold_mbps);
            assert_eq!(s.window_cycles, p.window_cycles);
            assert_eq!(s.result.replicates(), seeds);
            for ((name, ss), (_, ps)) in s
                .result
                .metrics
                .fields()
                .iter()
                .zip(p.result.metrics.fields())
            {
                assert_eq!(
                    ss.mean().to_bits(),
                    ps.mean().to_bits(),
                    "{name} mean diverged at {} Mbps / {} cycles with {workers} workers",
                    s.threshold_mbps,
                    s.window_cycles
                );
                for level in ConfidenceLevel::ALL {
                    assert_eq!(
                        ss.half_width(level).to_bits(),
                        ps.half_width(level).to_bits(),
                        "{name} {level} half-width diverged with {workers} workers"
                    );
                }
                assert_eq!(ss.min().to_bits(), ps.min().to_bits());
                assert_eq!(ss.max().to_bits(), ps.max().to_bits());
            }
        }
        assert_eq!(
            render_replicated_sweep(&serial, ConfidenceLevel::P95),
            render_replicated_sweep(&parallel, ConfidenceLevel::P95)
        );
    }
}

#[test]
fn scenario_run_is_bit_identical_across_worker_counts() {
    // The PR-5 acceptance gate: a segment-aware scenario run — every
    // policy × replicate simulated once with per-segment snapshots —
    // folds per-segment and whole-run means/half-widths that are
    // bit-identical for any worker count, down to the rendered table
    // and the schema-4 JSON document `--json -` emits.
    let scenario = Scenario {
        name: "determinism".to_owned(),
        summary: "three-window schedule".to_owned(),
        benchmark: Benchmark::Ipfwdr,
        traffic: "schedule:segments=[low@0..150000; constant:rate=1500@150000..300000; \
                  low@300000..]"
            .parse()
            .unwrap(),
        policies: vec![
            PolicySpec::NoDvs,
            "tdvs:threshold=1200".parse().unwrap(),
            "edvs".parse().unwrap(),
        ],
        cycles: CYCLES + 150_000,
        seed: SEED,
        seeds: 3,
    };
    let run_with = |workers: usize| -> ScenarioRun {
        let (run, errors) = try_run_scenario(&Runner::new().with_workers(workers), &scenario);
        assert!(errors.is_empty(), "{errors:?}");
        run
    };
    let serial = run_with(1);
    for workers in [2, 4] {
        let parallel = run_with(workers);
        assert_eq!(serial.plan, parallel.plan);
        assert_eq!(serial.policies.len(), parallel.policies.len());
        for (s, p) in serial.policies.iter().zip(&parallel.policies) {
            assert_eq!(s.policy, p.policy);
            for ((name, ss), (_, ps)) in s.whole.fields().iter().zip(p.whole.fields()) {
                assert_eq!(
                    ss.mean().to_bits(),
                    ps.mean().to_bits(),
                    "whole-run {name} diverged with {workers} workers"
                );
                for level in ConfidenceLevel::ALL {
                    assert_eq!(
                        ss.half_width(level).to_bits(),
                        ps.half_width(level).to_bits(),
                        "whole-run {name} {level} half-width diverged with {workers} workers"
                    );
                }
            }
            for (sseg, pseg) in s.segments.iter().zip(&p.segments) {
                assert_eq!(sseg.segment, pseg.segment);
                for ((name, ss), (_, ps)) in sseg.metrics.fields().iter().zip(pseg.metrics.fields())
                {
                    assert_eq!(
                        ss.mean().to_bits(),
                        ps.mean().to_bits(),
                        "segment '{}' {name} diverged with {workers} workers",
                        sseg.segment.label
                    );
                    assert_eq!(
                        ss.half_width(ConfidenceLevel::P95).to_bits(),
                        ps.half_width(ConfidenceLevel::P95).to_bits(),
                        "segment '{}' {name} half-width diverged",
                        sseg.segment.label
                    );
                }
            }
        }
        // Table and JSON document byte-for-byte — what the CLI gate
        // (`--seeds K --ci 95 --json -` under --jobs 1 vs N) compares.
        assert_eq!(
            render_scenario(&serial, ConfidenceLevel::P95),
            render_scenario(&parallel, ConfidenceLevel::P95)
        );
        assert_eq!(
            scenario_json(&serial, ConfidenceLevel::P95, &[]),
            scenario_json(&parallel, ConfidenceLevel::P95, &[])
        );
    }
    // The middle window genuinely differs from the lulls (a 1500 Mbps
    // CBR storm vs the 450 Mbps MMPP lull), so per-segment breakdowns
    // carry real signal — guard against a plan that slices nothing.
    let nodvs = &serial.policies[0];
    assert!(
        nodvs.segments[1].metrics.offered_mbps.mean()
            > 1.2 * nodvs.segments[0].metrics.offered_mbps.mean(),
        "storm window should offer more than the lull ({} vs {})",
        nodvs.segments[1].metrics.offered_mbps.mean(),
        nodvs.segments[0].metrics.offered_mbps.mean(),
    );
}

#[test]
fn degenerate_fleet_is_identical_to_the_single_chip_path() {
    // The PR-6 identity gate: a one-chip fleet under round-robin
    // dispatch and no fleet policy is *literally* the single-chip
    // experiment — the 1/1 share takes the pass-through branch of the
    // traffic thinner, so the packet stream, and with it every metric,
    // is bit-identical to a bare `JobSpec` run at the derived chip
    // seed.
    let mut config = FleetConfig::new(1);
    config.cycles = CYCLES;
    config.seed = SEED;
    let outcome = run_fleet(&config, 1, &Runner::serial());
    assert!(outcome.errors.is_empty(), "{:?}", outcome.errors);
    let fleet = &outcome.report.fleet;

    let solo = JobSpec {
        benchmark: config.benchmark,
        traffic: config.traffic.clone(),
        policy: config.policy.clone(),
        cycles: CYCLES,
        seed: chip_seed(SEED, 0),
    }
    .simulate();

    assert_eq!(outcome.report.shares, vec![1.0]);
    assert_eq!(
        fleet.forwarded_packets.mean(),
        solo.forwarded_packets as f64
    );
    assert_eq!(
        fleet.total_energy_uj.mean().to_bits(),
        solo.total_energy_uj().to_bits()
    );
    assert_eq!(
        fleet.throughput_mbps.mean().to_bits(),
        solo.throughput_mbps().to_bits()
    );
    assert_eq!(
        fleet.mean_power_w.mean().to_bits(),
        solo.mean_power_w().to_bits()
    );
    assert_eq!(
        fleet.offered_mbps.mean().to_bits(),
        solo.offered_mbps().to_bits()
    );
}

#[test]
fn fleet_run_is_bit_identical_across_worker_counts() {
    // The PR-6 acceptance gate: a replicated fleet run — skewed hash
    // dispatch, per-chip TDVS, cap-and-reallocate on top — folds
    // fleet-wide and per-chip means/half-widths that are bit-identical
    // for any worker count, down to the rendered table and the schema-5
    // JSON document `--json -` emits.
    let mut config = FleetConfig::new(5);
    config.cycles = CYCLES;
    config.seed = SEED;
    config.dispatch = "hash:flows=64".parse().unwrap();
    config.policy = "tdvs:threshold=1200".parse().unwrap();
    config.fleet_policy = "cap-realloc:budget=6,period=100000".parse().unwrap();
    let run = |workers: usize| {
        let outcome = run_fleet(&config, 3, &Runner::new().with_workers(workers));
        assert!(outcome.errors.is_empty(), "{:?}", outcome.errors);
        outcome
    };
    let serial = run(1);
    for workers in [2, 4] {
        let parallel = run(workers);
        assert_eq!(serial.report.shares, parallel.report.shares);
        for ((name, ss), (_, ps)) in serial
            .report
            .fleet
            .fields()
            .iter()
            .zip(parallel.report.fleet.fields())
        {
            assert_eq!(
                ss.mean().to_bits(),
                ps.mean().to_bits(),
                "fleet {name} mean diverged with {workers} workers"
            );
            for level in ConfidenceLevel::ALL {
                assert_eq!(
                    ss.half_width(level).to_bits(),
                    ps.half_width(level).to_bits(),
                    "fleet {name} {level} half-width diverged with {workers} workers"
                );
            }
        }
        for (chip, (sc, pc)) in serial
            .report
            .chips
            .iter()
            .zip(&parallel.report.chips)
            .enumerate()
        {
            assert_eq!(sc.share.to_bits(), pc.share.to_bits());
            for ((name, ss), (_, ps)) in sc.fields().iter().zip(pc.fields()) {
                assert_eq!(
                    ss.mean().to_bits(),
                    ps.mean().to_bits(),
                    "chip {chip} {name} diverged with {workers} workers"
                );
            }
        }
        assert_eq!(
            render_fleet(&serial.report, ConfidenceLevel::P95),
            render_fleet(&parallel.report, ConfidenceLevel::P95)
        );
        assert_eq!(
            fleet_json(&serial, ConfidenceLevel::P95),
            fleet_json(&parallel, ConfidenceLevel::P95)
        );
    }
    // The hash dispatcher's heavy-tailed flow weights genuinely skew
    // the shares, so the per-chip breakdown carries real signal.
    let shares = &serial.report.shares;
    let max = shares.iter().cloned().fold(0.0, f64::max);
    let min = shares.iter().cloned().fold(1.0, f64::min);
    assert!(max > 1.2 * min, "expected skewed shares, got {shares:?}");
}

#[test]
fn replicated_comparison_is_bit_identical_across_worker_counts() {
    let cfg = ComparisonConfig {
        cycles: CYCLES,
        seed: SEED,
        ..ComparisonConfig::default()
    };
    let run = |workers: usize| -> ReplicatedComparison {
        let (cmp, errors) = try_replicated_compare(
            &Runner::new().with_workers(workers),
            &[Benchmark::Ipfwdr],
            &[TrafficLevel::Low.into()],
            &cfg,
            2,
        );
        assert!(errors.is_empty());
        cmp
    };
    let serial = run(1);
    let parallel = run(4);
    assert_eq!(serial.rows.len(), parallel.rows.len());
    assert_eq!(
        render_replicated_comparison(&serial, ConfidenceLevel::P95),
        render_replicated_comparison(&parallel, ConfidenceLevel::P95)
    );
    for (s, p) in serial.rows.iter().zip(&parallel.rows) {
        assert_eq!(s.policy, p.policy);
        assert_eq!(
            s.result.metrics.total_energy_uj.mean().to_bits(),
            p.result.metrics.total_energy_uj.mean().to_bits()
        );
        assert_eq!(
            s.result
                .metrics
                .total_energy_uj
                .half_width(ConfidenceLevel::P99)
                .to_bits(),
            p.result
                .metrics
                .total_energy_uj
                .half_width(ConfidenceLevel::P99)
                .to_bits()
        );
    }
}

#[test]
fn recording_is_pure_observation_at_the_experiment_level() {
    // The obs-layer contract from the experiment's point of view: a
    // recorder-attached run produces the exact same report and
    // distributions as the NullRecorder default, plus a non-empty
    // recording (nepsim guards the simulator-level identity).
    let experiment = abdex::Experiment {
        benchmark: Benchmark::Ipfwdr,
        traffic: TrafficLevel::High.into(),
        policy: "tdvs:threshold=1200".parse().unwrap(),
        cycles: CYCLES,
        seed: SEED,
    };
    let plain = experiment.run();
    let (recorded, recording) = experiment.run_recorded();
    assert_eq!(plain.sim, recorded.sim, "recording perturbed the report");
    assert_eq!(
        plain.p80_power_w().to_bits(),
        recorded.p80_power_w().to_bits()
    );
    assert_eq!(
        plain.p80_throughput_mbps().to_bits(),
        recorded.p80_throughput_mbps().to_bits()
    );
    assert!(!recording.is_empty());
    // Every stats window emits one sample per channel.
    assert_eq!(recording.len() % nepsim::Channel::ALL.len(), 0);
}

#[test]
fn recorded_jsonl_is_byte_identical_across_worker_counts() {
    // The --record acceptance gate at the library level: the JSONL
    // export of every recorded source — run, scenario, fleet — is a
    // pure function of the batch description, byte-identical for any
    // worker count.
    use abdex::record::{
        fleet_record_series, record_jsonl, scenario_record_series, try_replicated_run_recorded,
    };

    let experiment = abdex::Experiment {
        benchmark: Benchmark::Ipfwdr,
        traffic: TrafficLevel::High.into(),
        policy: PolicySpec::NoDvs,
        cycles: CYCLES,
        seed: SEED,
    };
    let run = |workers: usize| {
        let (replicated, series) =
            try_replicated_run_recorded(&Runner::new().with_workers(workers), &experiment, 3)
                .expect("no replicate failed");
        (replicated, record_jsonl("run", &series))
    };
    let (serial_fold, serial_doc) = run(1);
    let (parallel_fold, parallel_doc) = run(4);
    assert_eq!(serial_doc, parallel_doc, "run record diverged");
    assert_eq!(
        serial_fold.metrics.mean_power_w.mean().to_bits(),
        parallel_fold.metrics.mean_power_w.mean().to_bits()
    );
    // The recorded fold matches the unrecorded one bit-for-bit.
    let plain = abdex::replicate::try_replicated_run(&Runner::serial(), &experiment, 3)
        .expect("no replicate failed");
    assert_eq!(
        plain.metrics.total_energy_uj.mean().to_bits(),
        serial_fold.metrics.total_energy_uj.mean().to_bits()
    );

    let scenario = Scenario {
        name: "record-determinism".to_owned(),
        summary: "two-window schedule".to_owned(),
        benchmark: Benchmark::Ipfwdr,
        traffic: "schedule:segments=[low@0..150000; constant:rate=1500@150000..]"
            .parse()
            .unwrap(),
        policies: vec![PolicySpec::NoDvs, "tdvs:threshold=1200".parse().unwrap()],
        cycles: CYCLES,
        seed: SEED,
        seeds: 2,
    };
    let scenario_doc = |workers: usize| {
        let (_, errors, recordings) = abdex::scenario::try_run_scenario_recorded(
            &Runner::new().with_workers(workers),
            &scenario,
        );
        assert!(errors.is_empty(), "{errors:?}");
        record_jsonl("scenario", &scenario_record_series(&scenario, &recordings))
    };
    assert_eq!(scenario_doc(1), scenario_doc(4), "scenario record diverged");

    let mut config = FleetConfig::new(3);
    config.cycles = CYCLES;
    config.seed = SEED;
    config.dispatch = "hash:flows=64".parse().unwrap();
    let fleet_doc = |workers: usize| {
        let outcome = run_fleet(&config, 2, &Runner::new().with_workers(workers));
        assert!(outcome.errors.is_empty(), "{:?}", outcome.errors);
        record_jsonl("fleet", &fleet_record_series(&outcome))
    };
    assert_eq!(fleet_doc(1), fleet_doc(4), "fleet record diverged");
}

/// A throwaway cache rooted in the temp dir, cleaned before use.
fn scratch_cache(tag: &str) -> abdex::Cache {
    let dir = std::env::temp_dir().join(format!("abdex-determinism-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    abdex::Cache::open(dir).expect("cache dir")
}

#[test]
fn cached_tdvs_sweep_is_byte_identical_to_cold() {
    // The cache acceptance gate at the library level: an uncached
    // sweep, a cold cached sweep and a warm cached sweep render the
    // same table and the same JSON document byte-for-byte — and the
    // warm pass simulates nothing.
    let uncached = tdvs_cells(1);
    let runner = Runner::serial().with_cache(scratch_cache("tdvs"));
    let cells = |runner: &Runner| -> Vec<GridCell> {
        try_sweep_tdvs(
            runner,
            Benchmark::Ipfwdr,
            &TrafficLevel::High.into(),
            &grid(),
            CYCLES,
            SEED,
        )
        .into_iter()
        .map(|o| o.expect("no cell failed"))
        .collect()
    };
    let cold = cells(&runner);
    let warm = cells(&runner);
    let counters = runner.cache().unwrap().counters();
    assert_eq!(counters.hits, 4, "warm pass must hit every cell");
    assert_eq!(counters.misses, 4, "cold pass must miss every cell");
    assert_eq!(counters.stores, 4);
    assert_eq!(render_sweep(&uncached), render_sweep(&cold));
    assert_eq!(render_sweep(&cold), render_sweep(&warm));
    assert_eq!(
        abdex::json::tdvs_sweep_json(&uncached, &[]),
        abdex::json::tdvs_sweep_json(&cold, &[])
    );
    assert_eq!(
        abdex::json::tdvs_sweep_json(&cold, &[]),
        abdex::json::tdvs_sweep_json(&warm, &[])
    );
    let _ = std::fs::remove_dir_all(runner.cache().unwrap().root());
}

#[test]
fn cached_scenario_and_fleet_documents_are_byte_identical() {
    // Scenario axis: cached cold and warm runs render the same
    // `scenario` document as an uncached run.
    let scenario = Scenario {
        name: "cache-determinism".to_owned(),
        summary: "two-window schedule".to_owned(),
        benchmark: Benchmark::Ipfwdr,
        traffic: "schedule:segments=[low@0..150000; constant:rate=1500@150000..]"
            .parse()
            .unwrap(),
        policies: vec![PolicySpec::NoDvs, "tdvs:threshold=1200".parse().unwrap()],
        cycles: CYCLES,
        seed: SEED,
        seeds: 2,
    };
    let doc = |runner: &Runner| {
        let (run, errors) = try_run_scenario(runner, &scenario);
        assert!(errors.is_empty(), "{errors:?}");
        scenario_json(&run, ConfidenceLevel::default(), &errors)
    };
    let uncached = doc(&Runner::serial());
    let runner = Runner::serial().with_cache(scratch_cache("scenario"));
    assert_eq!(uncached, doc(&runner), "cold scenario doc diverged");
    assert_eq!(uncached, doc(&runner), "warm scenario doc diverged");
    let counters = runner.cache().unwrap().counters();
    assert_eq!((counters.misses, counters.hits), (4, 4));
    let _ = std::fs::remove_dir_all(runner.cache().unwrap().root());

    // Fleet axis: the `fleet` document *and* the `--record` JSONL are
    // byte-identical warm — the cache carries each chip's recording
    // alongside its report.
    use abdex::record::{fleet_record_series, record_jsonl};
    let mut config = FleetConfig::new(3);
    config.cycles = CYCLES;
    config.seed = SEED;
    config.dispatch = "hash:flows=64".parse().unwrap();
    let docs = |runner: &Runner| {
        let outcome = run_fleet(&config, 2, runner);
        assert!(outcome.errors.is_empty(), "{:?}", outcome.errors);
        (
            fleet_json(&outcome, ConfidenceLevel::default()),
            record_jsonl("fleet", &fleet_record_series(&outcome)),
        )
    };
    let uncached = docs(&Runner::serial());
    let runner = Runner::serial().with_cache(scratch_cache("fleet"));
    assert_eq!(uncached, docs(&runner), "cold fleet docs diverged");
    assert_eq!(uncached, docs(&runner), "warm fleet docs diverged");
    let counters = runner.cache().unwrap().counters();
    assert_eq!((counters.misses, counters.hits), (6, 6));
    let _ = std::fs::remove_dir_all(runner.cache().unwrap().root());
}

#[test]
fn profiling_is_pure_observation_and_summaries_are_jobs_invariant() {
    // Arm the global span profiler, run the sweep, disarm, drain: the
    // rendered table must be byte-identical to the unprofiled baseline.
    // Profiling is wall-clock observability — it must never leak into
    // results. (cli.rs pins the same invariant on full-process stdout
    // for run/sweep/fleet.)
    let baseline = render_sweep(&tdvs_cells(1));
    abdex::obs::prof::set_enabled(true);
    let profiled = render_sweep(&tdvs_cells(2));
    abdex::obs::prof::set_enabled(false);
    let profile = abdex::obs::prof::drain();
    assert_eq!(baseline, profiled, "profiling changed the table");
    assert!(
        profile.spans.iter().any(|s| s.name == "simulate"),
        "armed sweep recorded no simulate spans"
    );
    assert!(profile.spans.iter().any(|s| s.name == "fold"));
    // The export is structurally a Chrome Trace Event document.
    let doc = profile.chrome_trace_json();
    assert!(doc.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
    assert!(doc.contains("\"ph\":\"X\""));

    // The recording analyzer is a deterministic fold: the obs_summary
    // document is byte-identical for any worker count.
    use abdex::record::{record_jsonl, try_replicated_run_recorded};
    let experiment = abdex::Experiment {
        benchmark: Benchmark::Ipfwdr,
        traffic: TrafficLevel::High.into(),
        policy: PolicySpec::NoDvs,
        cycles: CYCLES,
        seed: SEED,
    };
    let (_, series) = try_replicated_run_recorded(&Runner::serial(), &experiment, 3).unwrap();
    let jsonl = record_jsonl("run", &series);
    let doc = |workers: usize| {
        let summary =
            abdex::summarize::summarize_record(&jsonl, &Runner::new().with_workers(workers))
                .expect("valid recording");
        abdex::summarize::render_summary_json(&summary)
    };
    let serial = doc(1);
    assert_eq!(serial, doc(4), "obs_summary diverged across workers");
    assert!(serial.contains("\"kind\":\"obs_summary\""));
}
