//! A dependency-free hierarchical span profiler with Chrome-trace
//! export.
//!
//! Host-side wall-time attribution for the whole pipeline: callers open
//! RAII [`SpanGuard`]s ([`span`]) around phases ("parse", "simulate",
//! "fold", ...), guards nest on a thread-local stack, and every thread
//! buffers its closed spans locally. Buffers flush into a process
//! global when their thread exits (the `xrun` workers are scoped, so
//! they are gone before a batch returns) and [`drain`] merges them into
//! a [`Profile`] that renders as
//!
//! * **Chrome Trace Event Format JSON** ([`Profile::chrome_trace_json`])
//!   — complete `"ph":"X"` events with `pid`/`tid`/`ts`/`dur` in
//!   microseconds plus `"ph":"C"` counter events, loadable in Perfetto
//!   or `chrome://tracing` as-is — and
//! * a human per-phase summary table ([`Profile::summary_table`]) with
//!   count, total, self-time (total minus time spent in child spans)
//!   and mean per phase.
//!
//! The profiler is **off by default**: [`span`] costs one relaxed
//! atomic load until [`set_enabled`]`(true)` arms it (the CLI does this
//! for `--profile`/`--profile-summary`). Profiles measure wall-clock
//! time, so they are inherently non-deterministic — which is why they
//! only ever leave the process through stderr or a dedicated trace
//! file, never through the deterministic stdout documents
//! (`crates/core/tests/cli.rs` pins stdout byte-identity with and
//! without `--profile`).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Process-wide arm switch; spans are recorded only while `true`.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Next profiler thread id; small stable ids (1, 2, ...) in thread
/// registration order beat the opaque OS ids in a trace viewer.
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

/// The timestamp origin every `ts` is measured from. Pinned at first
/// use (normally the [`set_enabled`] call in `main`), so traces start
/// near t=0.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Closed spans flushed from exited threads plus all counter samples.
struct Global {
    spans: Vec<SpanRec>,
    counters: Vec<CounterRec>,
    /// Running cumulative value per counter name (counter events carry
    /// the post-increment total, which is what plots well).
    totals: BTreeMap<String, f64>,
}

fn global() -> &'static Mutex<Global> {
    static GLOBAL: OnceLock<Mutex<Global>> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        Mutex::new(Global {
            spans: Vec::new(),
            counters: Vec::new(),
            totals: BTreeMap::new(),
        })
    })
}

/// A span still on some thread's stack.
struct OpenSpan {
    name: String,
    start: Instant,
    /// Total microseconds spent in already-closed direct children —
    /// subtracted from this span's duration to get its self-time.
    child_us: u64,
}

/// Per-thread buffer: the open-span stack and the closed spans waiting
/// to be flushed. Flushes itself into [`Global`] when the thread exits.
struct ThreadBuf {
    tid: u64,
    stack: Vec<OpenSpan>,
    done: Vec<SpanRec>,
}

impl ThreadBuf {
    fn new() -> Self {
        ThreadBuf {
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            stack: Vec::new(),
            done: Vec::new(),
        }
    }

    fn flush(&mut self) {
        if self.done.is_empty() {
            return;
        }
        let mut g = global().lock().expect("profiler registry poisoned");
        g.spans.append(&mut self.done);
    }
}

impl Drop for ThreadBuf {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static BUF: RefCell<ThreadBuf> = RefCell::new(ThreadBuf::new());
}

/// Arms (or disarms) the profiler process-wide. Also pins the trace
/// epoch on first arming so timestamps start near zero.
pub fn set_enabled(on: bool) {
    if on {
        let _ = epoch();
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether spans are currently being recorded.
#[must_use]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// One closed span: a complete Chrome-trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRec {
    /// Phase name ("simulate", "fold", a job label, ...).
    pub name: String,
    /// Profiler thread id (registration order, starting at 1).
    pub tid: u64,
    /// Start, microseconds since the trace epoch.
    pub ts_us: u64,
    /// Wall-clock duration in microseconds.
    pub dur_us: u64,
    /// Duration minus time spent in direct child spans.
    pub self_us: u64,
}

/// One counter sample: a Chrome-trace `"ph":"C"` event carrying the
/// cumulative total after the increment.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterRec {
    /// Counter name ("cache.hits", ...).
    pub name: String,
    /// Profiler thread id of the incrementing thread.
    pub tid: u64,
    /// Sample time, microseconds since the trace epoch.
    pub ts_us: u64,
    /// Cumulative value after this increment.
    pub total: f64,
}

/// RAII guard for one span: opened by [`span`], the span closes (and is
/// recorded) when the guard drops. Guards are `!Send` — a span lives
/// and dies on one thread's stack.
#[derive(Debug)]
pub struct SpanGuard {
    active: bool,
    _not_send: PhantomData<*const ()>,
}

impl SpanGuard {
    /// Renames the span before it closes — for phases whose identity is
    /// only known at the end, like a cache probe resolving to
    /// `cache.lookup.hit` or `cache.lookup.miss`. Call before opening any child span
    /// (the rename applies to the innermost open span).
    pub fn set_name(&mut self, name: &str) {
        if !self.active {
            return;
        }
        BUF.with(|b| {
            if let Some(top) = b.borrow_mut().stack.last_mut() {
                top.name.clear();
                top.name.push_str(name);
            }
        });
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        BUF.with(|b| {
            let mut b = b.borrow_mut();
            let Some(open) = b.stack.pop() else { return };
            let dur_us = u64::try_from(open.start.elapsed().as_micros()).unwrap_or(u64::MAX);
            let ts_us =
                u64::try_from(open.start.duration_since(epoch()).as_micros()).unwrap_or(u64::MAX);
            let self_us = dur_us.saturating_sub(open.child_us);
            if let Some(parent) = b.stack.last_mut() {
                parent.child_us = parent.child_us.saturating_add(dur_us);
            }
            let tid = b.tid;
            b.done.push(SpanRec {
                name: open.name,
                tid,
                ts_us,
                dur_us,
                self_us,
            });
        });
    }
}

/// Opens a span named `name` on the calling thread; it closes when the
/// returned guard drops. A no-op (one atomic load, no allocation) while
/// the profiler is disarmed.
#[must_use]
pub fn span(name: &str) -> SpanGuard {
    if !ENABLED.load(Ordering::Relaxed) {
        return SpanGuard {
            active: false,
            _not_send: PhantomData,
        };
    }
    BUF.with(|b| {
        b.borrow_mut().stack.push(OpenSpan {
            name: name.to_owned(),
            start: Instant::now(),
            child_us: 0,
        });
    });
    SpanGuard {
        active: true,
        _not_send: PhantomData,
    }
}

/// Increments the named counter by `delta` and records a counter event
/// carrying the new cumulative total. A no-op while disarmed.
pub fn count(name: &str, delta: f64) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    let ts_us = u64::try_from(epoch().elapsed().as_micros()).unwrap_or(u64::MAX);
    let tid = BUF.with(|b| b.borrow().tid);
    let mut g = global().lock().expect("profiler registry poisoned");
    let total = {
        let slot = g.totals.entry(name.to_owned()).or_insert(0.0);
        *slot += delta;
        *slot
    };
    g.counters.push(CounterRec {
        name: name.to_owned(),
        tid,
        ts_us,
        total,
    });
}

/// Flushes the calling thread's buffer and takes every recorded event
/// process-wide, leaving the profiler empty (still-open spans survive
/// and land in a later drain). Worker threads flush automatically on
/// exit; call this from the thread that owns process shutdown.
#[must_use]
pub fn drain() -> Profile {
    BUF.with(|b| b.borrow_mut().flush());
    let mut g = global().lock().expect("profiler registry poisoned");
    let mut spans = std::mem::take(&mut g.spans);
    let counters = std::mem::take(&mut g.counters);
    g.totals.clear();
    drop(g);
    // Merged buffers arrive in thread-exit order; (ts, tid, name) makes
    // the export stable and chronological.
    spans.sort_by(|a, b| (a.ts_us, a.tid, a.name.as_str()).cmp(&(b.ts_us, b.tid, b.name.as_str())));
    Profile { spans, counters }
}

/// Every event recorded between arming and [`drain`].
#[derive(Debug, Clone, Default)]
pub struct Profile {
    /// Closed spans, sorted by (start, tid, name).
    pub spans: Vec<SpanRec>,
    /// Counter samples in record order.
    pub counters: Vec<CounterRec>,
}

/// Escapes a string for a JSON string literal (the profiler is
/// dependency-free, so it carries its own four-line escaper).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl Profile {
    /// `true` when nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.counters.is_empty()
    }

    /// Final cumulative value per counter name.
    #[must_use]
    pub fn counter_totals(&self) -> BTreeMap<String, f64> {
        let mut totals = BTreeMap::new();
        for c in &self.counters {
            totals.insert(c.name.clone(), c.total);
        }
        totals
    }

    /// Renders the profile as Chrome Trace Event Format JSON: one
    /// complete (`"ph":"X"`) event per span and one counter
    /// (`"ph":"C"`) event per counter sample, all under `pid` 1 with
    /// microsecond timestamps. The document loads directly in Perfetto
    /// (<https://ui.perfetto.dev>) or `chrome://tracing`.
    #[must_use]
    pub fn chrome_trace_json(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        for s in &self.spans {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"abdex\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
                 \"ts\":{},\"dur\":{}}}",
                escape_json(&s.name),
                s.tid,
                s.ts_us,
                s.dur_us
            );
        }
        for c in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            let total = if c.total.is_finite() { c.total } else { 0.0 };
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"abdex\",\"ph\":\"C\",\"pid\":1,\"tid\":{},\
                 \"ts\":{},\"args\":{{\"value\":{total}}}}}",
                escape_json(&c.name),
                c.tid,
                c.ts_us
            );
        }
        out.push_str("]}\n");
        out
    }

    /// Renders the human per-phase summary: one row per span name with
    /// count, total time, self-time and mean, heaviest self-time first,
    /// plus the final counter totals. Intended for stderr.
    #[must_use]
    pub fn summary_table(&self) -> String {
        struct Row {
            count: u64,
            total_us: u64,
            self_us: u64,
        }
        let mut rows: BTreeMap<&str, Row> = BTreeMap::new();
        for s in &self.spans {
            let row = rows.entry(&s.name).or_insert(Row {
                count: 0,
                total_us: 0,
                self_us: 0,
            });
            row.count += 1;
            row.total_us += s.dur_us;
            row.self_us += s.self_us;
        }
        let mut sorted: Vec<(&str, Row)> = rows.into_iter().collect();
        sorted.sort_by(|a, b| b.1.self_us.cmp(&a.1.self_us).then(a.0.cmp(b.0)));
        let ms = |us: u64| us as f64 / 1000.0;
        let mut out = format!(
            "profile: {} span(s) across {} phase(s)\n",
            self.spans.len(),
            sorted.len()
        );
        let _ = writeln!(
            out,
            "  {:<36} {:>7} {:>12} {:>12} {:>12}",
            "phase", "count", "total ms", "self ms", "mean ms"
        );
        for (name, row) in &sorted {
            let _ = writeln!(
                out,
                "  {:<36} {:>7} {:>12.3} {:>12.3} {:>12.3}",
                name,
                row.count,
                ms(row.total_us),
                ms(row.self_us),
                ms(row.total_us) / row.count as f64
            );
        }
        for (name, total) in self.counter_totals() {
            let _ = writeln!(out, "  counter {name} = {total}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialises the tests that arm the global profiler; unit tests in
    /// this binary run concurrently and would otherwise see each
    /// other's spans mid-drain.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static TEST_LOCK: Mutex<()> = Mutex::new(());
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disarmed_spans_record_nothing() {
        let _serial = lock();
        set_enabled(false);
        {
            let _s = span("prof-test-disarmed");
        }
        count("prof-test-disarmed-counter", 1.0);
        let profile = drain();
        assert!(!profile.spans.iter().any(|s| s.name == "prof-test-disarmed"));
        assert!(!profile
            .counters
            .iter()
            .any(|c| c.name == "prof-test-disarmed-counter"));
    }

    #[test]
    fn nested_spans_attribute_self_time_to_the_parent() {
        let _serial = lock();
        set_enabled(true);
        {
            let _outer = span("prof-test-outer");
            std::thread::sleep(std::time::Duration::from_millis(4));
            {
                let _inner = span("prof-test-inner");
                std::thread::sleep(std::time::Duration::from_millis(4));
            }
        }
        set_enabled(false);
        let profile = drain();
        let outer = profile
            .spans
            .iter()
            .find(|s| s.name == "prof-test-outer")
            .expect("outer span recorded");
        let inner = profile
            .spans
            .iter()
            .find(|s| s.name == "prof-test-inner")
            .expect("inner span recorded");
        assert!(outer.dur_us >= inner.dur_us, "parent covers child");
        assert!(
            outer.self_us <= outer.dur_us - inner.dur_us,
            "self-time excludes the child: self {} dur {} child {}",
            outer.self_us,
            outer.dur_us,
            inner.dur_us
        );
        assert_eq!(inner.self_us, inner.dur_us, "leaf self-time is its total");
    }

    #[test]
    fn worker_thread_spans_merge_on_thread_exit() {
        let _serial = lock();
        set_enabled(true);
        std::thread::scope(|scope| {
            for i in 0..3 {
                scope.spawn(move || {
                    let _s = span(&format!("prof-test-worker-{i}"));
                });
            }
        });
        set_enabled(false);
        let profile = drain();
        for i in 0..3 {
            assert!(
                profile
                    .spans
                    .iter()
                    .any(|s| s.name == format!("prof-test-worker-{i}")),
                "worker {i} span survived the thread"
            );
        }
    }

    #[test]
    fn rename_and_counters_land_in_the_export() {
        let _serial = lock();
        set_enabled(true);
        {
            let mut s = span("prof-test-probe");
            s.set_name("prof-test-hit");
        }
        count("prof-test-hits", 1.0);
        count("prof-test-hits", 1.0);
        set_enabled(false);
        let profile = drain();
        assert!(profile.spans.iter().any(|s| s.name == "prof-test-hit"));
        assert!(!profile.spans.iter().any(|s| s.name == "prof-test-probe"));
        assert_eq!(profile.counter_totals().get("prof-test-hits"), Some(&2.0));
        let json = profile.chrome_trace_json();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.contains("\"name\":\"prof-test-hit\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"C\""));
        let table = profile.summary_table();
        assert!(table.contains("prof-test-hit"));
        assert!(table.contains("counter prof-test-hits = 2"));
    }

    #[test]
    fn escape_handles_quotes_and_control_chars() {
        assert_eq!(escape_json("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape_json("x\ny"), "x\\ny");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }
}
