//! Instrumentation layer for the simulation stack.
//!
//! Three pieces, all deterministic by construction:
//!
//! - **Recording**: a [`Recorder`] sink with typed [`Channel`]s that the
//!   simulator emits into at epoch (policy-window) boundaries. The
//!   default [`NullRecorder`] reports `enabled() == false`, so an
//!   uninstrumented run never computes a sample — the disabled path
//!   stays bit-identical to a build without the layer. [`MemRecorder`]
//!   keeps every sample in emission order and hands back a
//!   [`Recording`].
//! - **Sketching**: a fixed-bin log2 [`HistogramSketch`] giving
//!   p50/p90/p99 over any channel. Bins are a pure function of the
//!   value's bit pattern and [`HistogramSketch::merge`] just adds
//!   counts, so folds are exact and order-free — percentiles are
//!   bit-identical for any worker count, exactly like `stats::Summary`
//!   means.
//! - **Kernel counters**: [`KernelCounters`], the event-kernel tallies
//!   (events scheduled/processed, peak heap occupancy) that the
//!   `--obs-stats` flag and the `bench_kernel` baseline report. A
//!   process-wide tally ([`tally_kernel`]/[`kernel_tally`]) additionally
//!   sums every run's counters so batch telemetry (`--progress stats`)
//!   can report kernel-level rates next to runner-level ones.
//!
//! A fourth piece, [`prof`], is deliberately *not* deterministic: a
//! host-side wall-clock span profiler exporting Chrome-trace JSON. Its
//! output only ever leaves through stderr or a dedicated trace file,
//! never through the deterministic stdout documents.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicU64, Ordering};

pub mod prof;
pub mod sketch;

pub use sketch::HistogramSketch;

/// A typed stream of per-epoch samples.
///
/// The discriminant order is the canonical channel order: recordings
/// list a window's samples in this order, and every exporter iterates
/// [`Channel::ALL`], so serialized output is independent of insertion
/// or hash order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Channel {
    /// Mean chip power over the epoch, watts.
    Power,
    /// Mean ME voltage/frequency level index over the epoch.
    VfLevel,
    /// Queue depth (RX FIFO + TX queue packets) at the epoch boundary.
    QueueDepth,
    /// Packets dropped (RX + TX) during the epoch.
    Drops,
    /// Bytes offered by the traffic source during the epoch.
    OfferedBytes,
    /// Bytes forwarded out of the chip during the epoch.
    ServedBytes,
    /// Mean sojourn (arrival to forward) of packets forwarded during
    /// the epoch, microseconds — 0 for epochs that forwarded nothing.
    QueueWaitUs,
}

impl Channel {
    /// Every channel, in canonical order.
    pub const ALL: [Channel; 7] = [
        Channel::Power,
        Channel::VfLevel,
        Channel::QueueDepth,
        Channel::Drops,
        Channel::OfferedBytes,
        Channel::ServedBytes,
        Channel::QueueWaitUs,
    ];

    /// The channel's stable wire name (used in JSONL export).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Channel::Power => "power_w",
            Channel::VfLevel => "vf_level",
            Channel::QueueDepth => "queue_depth",
            Channel::Drops => "drops",
            Channel::OfferedBytes => "offered_bytes",
            Channel::ServedBytes => "served_bytes",
            Channel::QueueWaitUs => "queue_wait_us",
        }
    }
}

impl fmt::Display for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Channel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Channel::ALL
            .into_iter()
            .find(|c| c.name() == s)
            .ok_or_else(|| format!("unknown channel {s:?}"))
    }
}

/// One recorded observation: a channel value at a simulated cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// The channel this sample belongs to.
    pub channel: Channel,
    /// Simulated base-clock cycle of the epoch boundary.
    pub cycle: u64,
    /// The observed value.
    pub value: f64,
}

/// A sink for per-epoch samples.
///
/// Emitters must guard sample *computation* behind [`Recorder::enabled`]
/// so a [`NullRecorder`] run does no extra arithmetic — that is what
/// keeps the disabled path near-zero-cost and bit-identical.
pub trait Recorder: fmt::Debug {
    /// Whether this recorder wants samples at all.
    fn enabled(&self) -> bool;

    /// Accepts one sample. Called only between `enabled()` checks, but
    /// implementations must still be safe to call unconditionally.
    fn record(&mut self, channel: Channel, cycle: u64, value: f64);

    /// Takes the accumulated recording, leaving the recorder empty.
    fn take(&mut self) -> Recording;
}

/// The default recorder: drops everything, reports disabled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _channel: Channel, _cycle: u64, _value: f64) {}

    fn take(&mut self) -> Recording {
        Recording::default()
    }
}

/// An in-memory recorder keeping every sample in emission order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MemRecorder {
    samples: Vec<Sample>,
}

impl MemRecorder {
    /// A fresh, empty recorder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Recorder for MemRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, channel: Channel, cycle: u64, value: f64) {
        self.samples.push(Sample {
            channel,
            cycle,
            value,
        });
    }

    fn take(&mut self) -> Recording {
        Recording {
            samples: std::mem::take(&mut self.samples),
        }
    }
}

/// The samples of one run, in emission order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Recording {
    samples: Vec<Sample>,
}

impl Recording {
    /// A recording from pre-collected samples (in emission order) —
    /// the reconstruction path cache decoders use.
    #[must_use]
    pub fn from_samples(samples: Vec<Sample>) -> Self {
        Recording { samples }
    }

    /// Every sample, in emission order.
    #[must_use]
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Samples of one channel, in emission order.
    pub fn channel(&self, channel: Channel) -> impl Iterator<Item = &Sample> {
        self.samples.iter().filter(move |s| s.channel == channel)
    }

    /// The values of one channel, in emission order.
    #[must_use]
    pub fn values(&self, channel: Channel) -> Vec<f64> {
        self.channel(channel).map(|s| s.value).collect()
    }

    /// Number of samples across all channels.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the recording holds no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Folds one channel into a percentile sketch.
    #[must_use]
    pub fn sketch(&self, channel: Channel) -> HistogramSketch {
        let mut sketch = HistogramSketch::new();
        for sample in self.channel(channel) {
            sketch.record(sample.value);
        }
        sketch
    }
}

/// Event-kernel tallies for one simulation run.
///
/// Every field is a pure function of the simulated event sequence —
/// no wall-clock quantity may ever live here, because reports carrying
/// these counters are compared bit-exactly across worker counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelCounters {
    /// Events pushed onto the kernel heap.
    pub events_scheduled: u64,
    /// Events popped and dispatched.
    pub events_processed: u64,
    /// Peak number of events pending in the heap at once.
    pub peak_heap_len: u64,
}

impl KernelCounters {
    /// Total heap operations (pushes + pops).
    #[must_use]
    pub fn heap_ops(&self) -> u64 {
        self.events_scheduled + self.events_processed
    }
}

/// Process-wide sums of every simulation run's [`KernelCounters`]
/// (`peak_heap_len` sums the per-run peaks). Purely observability —
/// read back with [`kernel_tally`], never folded into result documents.
static TALLY_SCHEDULED: AtomicU64 = AtomicU64::new(0);
static TALLY_PROCESSED: AtomicU64 = AtomicU64::new(0);
static TALLY_PEAK: AtomicU64 = AtomicU64::new(0);

/// Adds one run's kernel counters to the process-wide tally. The
/// simulator calls this once per completed run, so batch telemetry can
/// diff [`kernel_tally`] snapshots around a batch.
pub fn tally_kernel(counters: &KernelCounters) {
    TALLY_SCHEDULED.fetch_add(counters.events_scheduled, Ordering::Relaxed);
    TALLY_PROCESSED.fetch_add(counters.events_processed, Ordering::Relaxed);
    TALLY_PEAK.fetch_add(counters.peak_heap_len, Ordering::Relaxed);
}

/// The process-wide kernel tally so far: the sum of every run's
/// counters (`peak_heap_len` is the sum of per-run peaks, not a
/// process-wide maximum, so snapshot differences stay meaningful).
#[must_use]
pub fn kernel_tally() -> KernelCounters {
    KernelCounters {
        events_scheduled: TALLY_SCHEDULED.load(Ordering::Relaxed),
        events_processed: TALLY_PROCESSED.load(Ordering::Relaxed),
        peak_heap_len: TALLY_PEAK.load(Ordering::Relaxed),
    }
}

/// Result-cache telemetry: how many cell lookups hit, missed, and how
/// many fresh results were published.
///
/// Deliberately **not** part of any simulation report or JSON result
/// document — whether a cell came from the cache is observability, not
/// a result, and folding it into result documents would break the
/// byte-identity invariant between warm and cold runs. The CLI prints
/// these to stderr and `abdex cache stats` reads the persisted totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups that returned an intact entry.
    pub hits: u64,
    /// Lookups that found nothing usable (including decode demotions).
    pub misses: u64,
    /// Fresh results published to the store.
    pub stores: u64,
}

impl CacheCounters {
    /// Total lookups (hits + misses).
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hits as a percentage of lookups; `None` when nothing was looked
    /// up (a rate over zero lookups would be noise, not telemetry).
    #[must_use]
    pub fn hit_rate_percent(&self) -> Option<f64> {
        match self.lookups() {
            0 => None,
            n => Some(100.0 * self.hits as f64 / n as f64),
        }
    }
}

impl fmt::Display for CacheCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hits, {} misses, {} stores",
            self.hits, self.misses, self.stores
        )?;
        if let Some(rate) = self.hit_rate_percent() {
            write!(f, " ({rate:.1}% hit rate)")?;
        }
        Ok(())
    }
}

/// A deterministic per-channel tally over many samples, used by fleet
/// folds that accumulate counts keyed by channel without caring about
/// insertion order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChannelSketches {
    sketches: BTreeMap<Channel, HistogramSketch>,
}

impl ChannelSketches {
    /// A fresh, empty set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one value into a channel's sketch.
    pub fn record(&mut self, channel: Channel, value: f64) {
        self.sketches.entry(channel).or_default().record(value);
    }

    /// Folds a whole recording in, channel by channel.
    pub fn absorb(&mut self, recording: &Recording) {
        for sample in recording.samples() {
            self.record(sample.channel, sample.value);
        }
    }

    /// The sketch of one channel, if any sample arrived.
    #[must_use]
    pub fn sketch(&self, channel: Channel) -> Option<&HistogramSketch> {
        self.sketches.get(&channel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_recorder_is_disabled_and_empty() {
        let mut r = NullRecorder;
        assert!(!r.enabled());
        r.record(Channel::Power, 0, 1.0);
        assert!(r.take().is_empty());
    }

    #[test]
    fn mem_recorder_keeps_emission_order() {
        let mut r = MemRecorder::new();
        r.record(Channel::Power, 10, 1.5);
        r.record(Channel::Drops, 10, 3.0);
        r.record(Channel::Power, 20, 1.25);
        let rec = r.take();
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.values(Channel::Power), vec![1.5, 1.25]);
        assert_eq!(rec.values(Channel::Drops), vec![3.0]);
        // take() drains: a second take is empty.
        assert!(r.take().is_empty());
    }

    #[test]
    fn channel_names_round_trip() {
        for channel in Channel::ALL {
            assert_eq!(channel.name().parse::<Channel>().unwrap(), channel);
        }
        assert!("nonesuch".parse::<Channel>().is_err());
    }

    #[test]
    fn recording_sketch_matches_manual_fold() {
        let mut r = MemRecorder::new();
        for (i, v) in [1.0, 2.0, 4.0, 8.0].into_iter().enumerate() {
            r.record(Channel::QueueDepth, i as u64, v);
        }
        let rec = r.take();
        let sketch = rec.sketch(Channel::QueueDepth);
        assert_eq!(sketch.count(), 4);
        let mut manual = HistogramSketch::new();
        for v in rec.values(Channel::QueueDepth) {
            manual.record(v);
        }
        assert_eq!(sketch, manual);
    }

    #[test]
    fn channel_sketches_absorb_equals_per_sample_record() {
        let mut r = MemRecorder::new();
        r.record(Channel::Power, 0, 0.5);
        r.record(Channel::QueueDepth, 0, 12.0);
        r.record(Channel::Power, 1, 0.75);
        let rec = r.take();
        let mut folded = ChannelSketches::new();
        folded.absorb(&rec);
        assert_eq!(folded.sketch(Channel::Power).unwrap().count(), 2);
        assert_eq!(folded.sketch(Channel::QueueDepth).unwrap().count(), 1);
        assert!(folded.sketch(Channel::Drops).is_none());
    }

    #[test]
    fn kernel_counters_sum_heap_ops() {
        let k = KernelCounters {
            events_scheduled: 10,
            events_processed: 8,
            peak_heap_len: 3,
        };
        assert_eq!(k.heap_ops(), 18);
        assert_eq!(KernelCounters::default().heap_ops(), 0);
    }

    #[test]
    fn kernel_tally_sums_every_run() {
        let before = kernel_tally();
        tally_kernel(&KernelCounters {
            events_scheduled: 5,
            events_processed: 4,
            peak_heap_len: 2,
        });
        tally_kernel(&KernelCounters {
            events_scheduled: 1,
            events_processed: 1,
            peak_heap_len: 3,
        });
        let after = kernel_tally();
        assert_eq!(after.events_scheduled - before.events_scheduled, 6);
        assert_eq!(after.events_processed - before.events_processed, 5);
        assert_eq!(after.peak_heap_len - before.peak_heap_len, 5);
    }

    #[test]
    fn cache_counters_report_a_hit_rate() {
        let idle = CacheCounters::default();
        assert_eq!(idle.hit_rate_percent(), None);
        assert_eq!(idle.to_string(), "0 hits, 0 misses, 0 stores");
        let warm = CacheCounters {
            hits: 3,
            misses: 1,
            stores: 1,
        };
        assert_eq!(warm.hit_rate_percent(), Some(75.0));
        assert_eq!(
            warm.to_string(),
            "3 hits, 1 misses, 1 stores (75.0% hit rate)"
        );
        let cold = CacheCounters {
            hits: 0,
            misses: 32,
            stores: 32,
        };
        assert_eq!(
            cold.to_string(),
            "0 hits, 32 misses, 32 stores (0.0% hit rate)"
        );
    }
}
