//! Deterministic fixed-bin log2 histogram sketch.
//!
//! Values are binned by bit pattern: the key is the f64's biased
//! exponent concatenated with the top 3 mantissa bits, giving 8
//! linearly-spaced sub-bins per octave (≤ 12.5 % relative bin width).
//! Binning never does arithmetic on the value, so two runs that record
//! the same values — in any order — build the same sketch, and
//! [`HistogramSketch::merge`] (plain count addition) folds replicates
//! exactly, the way `stats::Summary` folds means.
//!
//! Quantiles report a bin's **lower edge**, again reconstructed purely
//! from the key's bits: a quantile is always a value ≤ the true order
//! statistic, within one bin width, and bit-identical across worker
//! counts and fold orders.

use std::collections::BTreeMap;

/// Mantissa bits kept per bin: 2³ = 8 sub-bins per octave.
const SUB_BITS: u32 = 3;

/// Bin key for non-positive / non-finite values (see [`bin_key`]).
const ZERO_KEY: u32 = 0;

/// A deterministic log2 histogram over non-negative samples.
///
/// Zero, negative and non-finite values all land in a dedicated
/// underflow bin whose lower edge is 0 — the recorded channels are
/// non-negative, so this only matters for degenerate inputs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSketch {
    counts: BTreeMap<u32, u64>,
    total: u64,
}

/// Maps a value to its bin key. Pure bit manipulation: biased exponent
/// (11 bits) followed by the top [`SUB_BITS`] mantissa bits, offset by
/// one so [`ZERO_KEY`] stays reserved for the underflow bin.
fn bin_key(value: f64) -> u32 {
    if !value.is_finite() || value <= 0.0 {
        return ZERO_KEY;
    }
    let bits = value.to_bits();
    let exponent = ((bits >> 52) & 0x7ff) as u32;
    let sub = ((bits >> (52 - SUB_BITS)) & ((1 << SUB_BITS) - 1)) as u32;
    (exponent << SUB_BITS | sub) + 1
}

/// Reconstructs a bin's lower edge from its key — the exact inverse of
/// [`bin_key`] onto the smallest value in the bin.
fn bin_lower_edge(key: u32) -> f64 {
    if key == ZERO_KEY {
        return 0.0;
    }
    let k = u64::from(key - 1);
    let exponent = k >> SUB_BITS;
    let sub = k & ((1 << SUB_BITS) - 1);
    f64::from_bits(exponent << 52 | sub << (52 - SUB_BITS))
}

impl HistogramSketch {
    /// A fresh, empty sketch.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A sketch over a slice of values.
    #[must_use]
    pub fn of(values: &[f64]) -> Self {
        let mut sketch = Self::new();
        for &v in values {
            sketch.record(v);
        }
        sketch
    }

    /// Records one sample.
    pub fn record(&mut self, value: f64) {
        *self.counts.entry(bin_key(value)).or_insert(0) += 1;
        self.total += 1;
    }

    /// Adds every bin of `other` into this sketch. Exact and
    /// commutative: any fold order yields the same sketch.
    pub fn merge(&mut self, other: &Self) {
        for (&key, &n) in &other.counts {
            *self.counts.entry(key).or_insert(0) += n;
        }
        self.total += other.total;
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether no sample was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The q-quantile (`0 < q ≤ 1`) as the lower edge of the bin
    /// holding the ⌈q·n⌉-th smallest sample; `None` on an empty sketch.
    ///
    /// # Panics
    ///
    /// Panics when `q` is outside `(0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!(q > 0.0 && q <= 1.0, "quantile {q} outside (0, 1]");
        if self.total == 0 {
            return None;
        }
        // ⌈q·n⌉ computed in integers to stay exact for every n.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let target = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0_u64;
        for (&key, &n) in &self.counts {
            seen += n;
            if seen >= target {
                return Some(bin_lower_edge(key));
            }
        }
        unreachable!("bin counts sum to total")
    }

    /// Median (lower bin edge).
    #[must_use]
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.50)
    }

    /// 90th percentile (lower bin edge).
    #[must_use]
    pub fn p90(&self) -> Option<f64> {
        self.quantile(0.90)
    }

    /// 95th percentile (lower bin edge).
    #[must_use]
    pub fn p95(&self) -> Option<f64> {
        self.quantile(0.95)
    }

    /// 99th percentile (lower bin edge).
    #[must_use]
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sketch_has_no_quantiles() {
        let s = HistogramSketch::new();
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.5), None);
    }

    #[test]
    #[should_panic(expected = "outside (0, 1]")]
    fn zero_quantile_is_rejected() {
        let _ = HistogramSketch::of(&[1.0]).quantile(0.0);
    }

    #[test]
    fn lower_edge_is_at_most_the_value_and_within_an_octave_eighth() {
        let values = [
            1e-6, 0.013, 0.5, 0.99, 1.0, 1.01, 7.3, 64.0, 100.0, 1e9, 1e18,
        ];
        for &v in &values {
            let edge = bin_lower_edge(bin_key(v));
            assert!(edge <= v, "edge {edge} > value {v}");
            // Next sub-bin is 1/8 octave up: relative error ≤ 12.5 %.
            assert!(
                v < edge * (1.0 + 1.0 / 8.0) + f64::EPSILON,
                "value {v} bin too wide"
            );
        }
    }

    #[test]
    fn exact_powers_of_two_are_their_own_lower_edge() {
        for &v in &[0.25, 0.5, 1.0, 2.0, 4.0, 1024.0] {
            assert_eq!(bin_lower_edge(bin_key(v)), v);
        }
    }

    #[test]
    fn degenerate_values_land_in_the_underflow_bin() {
        for v in [0.0, -0.0, -3.5, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(bin_key(v), ZERO_KEY, "value {v}");
        }
        let s = HistogramSketch::of(&[0.0, -1.0]);
        assert_eq!(s.quantile(1.0), Some(0.0));
    }

    #[test]
    fn quantiles_walk_the_ordered_bins() {
        // 100 samples, 1..=100: p50 must sit in 50's bin, p99 in 99's.
        let values: Vec<f64> = (1..=100).map(f64::from).collect();
        let s = HistogramSketch::of(&values);
        assert_eq!(s.count(), 100);
        let p50 = s.p50().unwrap();
        assert!(p50 <= 50.0 && 50.0 < p50 * 1.125, "p50 {p50}");
        let p99 = s.p99().unwrap();
        assert!(p99 <= 99.0 && 99.0 < p99 * 1.125, "p99 {p99}");
        assert_eq!(s.quantile(1.0).unwrap(), bin_lower_edge(bin_key(100.0)));
        // Shuffled input builds the identical sketch.
        let mut reversed = values.clone();
        reversed.reverse();
        assert_eq!(HistogramSketch::of(&reversed), s);
    }

    #[test]
    fn merge_equals_recording_everything_into_one_sketch() {
        let a: Vec<f64> = (1..=37).map(|i| f64::from(i) * 0.37).collect();
        let b: Vec<f64> = (1..=53).map(|i| f64::from(i) * 1.91).collect();
        let mut merged = HistogramSketch::of(&a);
        merged.merge(&HistogramSketch::of(&b));
        let mut all = a.clone();
        all.extend_from_slice(&b);
        assert_eq!(merged, HistogramSketch::of(&all));
        // Commutes: b-then-a folds to the same sketch.
        let mut flipped = HistogramSketch::of(&b);
        flipped.merge(&HistogramSketch::of(&a));
        assert_eq!(flipped, merged);
        assert_eq!(merged.count(), 90);
    }

    #[test]
    fn constant_stream_reports_its_own_bin_for_every_quantile() {
        let s = HistogramSketch::of(&[3.0; 40]);
        let edge = bin_lower_edge(bin_key(3.0));
        for q in [0.01, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(s.quantile(q), Some(edge));
        }
    }
}
