//! Microengine state: threads, execution modes and time/energy accounting.

use desim::SimTime;
use dvs::{VfLadder, VfPoint};
use serde::{Deserialize, Serialize};
use traffic::Packet;

use crate::config::PowerParams;
use crate::workload::Segment;

/// Whether a microengine receives/processes packets or transmits them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MeRole {
    /// Receive + process (runs the benchmark's rx program).
    Rx,
    /// Transmit (runs the shared tx program).
    Tx,
}

/// What a microengine is doing over an interval of simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MeMode {
    /// Executing instructions (full active power).
    Busy,
    /// Busy-polling an empty FIFO or the bus-ready status — consumes
    /// active power but processes no packet work. *Not* idle for EDVS.
    Polling,
    /// All threads blocked on memory — the EDVS idle signal.
    Idle,
    /// Stalled by a VF-switch penalty.
    Stalled,
}

impl MeMode {
    /// All modes (accounting order).
    pub const ALL: [MeMode; 4] = [MeMode::Busy, MeMode::Polling, MeMode::Idle, MeMode::Stalled];

    const fn index(self) -> usize {
        match self {
            MeMode::Busy => 0,
            MeMode::Polling => 1,
            MeMode::Idle => 2,
            MeMode::Stalled => 3,
        }
    }
}

/// Why a thread is not runnable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ThreadState {
    /// Runnable.
    Ready,
    /// Waiting on an SRAM/SDRAM completion.
    BlockedMem,
    /// Waiting for the IX bus (busy-poll: active power).
    BlockedBus,
    /// Waiting for a packet to appear in the input queue (busy-poll).
    WaitingPacket,
}

/// One hardware thread of a microengine.
#[derive(Debug)]
pub(crate) struct Thread {
    pub state: ThreadState,
    /// The per-packet program currently being executed (empty => needs to
    /// fetch a packet).
    pub program: Vec<Segment>,
    pub pc: usize,
    pub packet: Option<Packet>,
}

impl Thread {
    pub(crate) fn new() -> Self {
        Thread {
            state: ThreadState::Ready,
            program: Vec::new(),
            pc: 0,
            packet: None,
        }
    }

    /// `true` when the thread has finished (or never had) a program and
    /// must fetch its next packet.
    pub(crate) fn needs_fetch(&self) -> bool {
        self.pc >= self.program.len()
    }
}

/// Per-mode accumulated wall time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModeAcc {
    durations: [SimTime; 4],
}

impl ModeAcc {
    /// Accumulated time in `mode`.
    #[must_use]
    pub fn get(&self, mode: MeMode) -> SimTime {
        self.durations[mode.index()]
    }

    /// Adds `dt` to `mode`.
    pub fn add(&mut self, mode: MeMode, dt: SimTime) {
        self.durations[mode.index()] += dt;
    }

    /// Sum over all modes.
    #[must_use]
    pub fn total(&self) -> SimTime {
        self.durations.iter().copied().sum()
    }

    /// Resets all buckets to zero.
    pub fn reset(&mut self) {
        self.durations = [SimTime::ZERO; 4];
    }

    /// Fraction of the total spent in `mode` (0 when nothing accumulated).
    #[must_use]
    pub fn fraction(&self, mode: MeMode) -> f64 {
        let total = self.total().as_secs();
        if total <= 0.0 {
            0.0
        } else {
            self.get(mode).as_secs() / total
        }
    }
}

/// A microengine: threads plus mode/energy accounting.
#[derive(Debug)]
pub(crate) struct Microengine {
    pub role: MeRole,
    pub threads: Vec<Thread>,
    /// Round-robin pointer for thread scheduling.
    pub next_thread: usize,
    /// Current VF level (index into the ladder).
    pub level_idx: usize,
    /// Current accounting mode.
    pub mode: MeMode,
    /// Time the current mode began.
    pub mode_since: SimTime,
    /// `true` when the ME has no scheduled continuation and must be woken
    /// by an external event.
    pub parked: bool,
    /// Invalidates stale `MeStep` events after a wake-by-other-source.
    pub step_token: u64,
    /// End of a pending VF-switch stall.
    pub stalled_until: SimTime,
    /// Lifetime per-mode accounting.
    pub acc: ModeAcc,
    /// Per-monitor-window accounting (reset at each window boundary).
    pub window_acc: ModeAcc,
    /// Energy consumed by this ME so far, µJ (accounted intervals only).
    pub energy_uj: f64,
    /// Wall time spent at each VF level (index = ladder index).
    pub level_acc: Vec<SimTime>,
    /// Number of VF switches applied to this ME.
    pub switches: u64,
    /// Packets fully processed (rx) or transmitted (tx) by this ME.
    pub packets_done: u64,
}

impl Microengine {
    pub(crate) fn new(role: MeRole, threads: usize, top_level: usize) -> Self {
        Microengine {
            role,
            threads: (0..threads).map(|_| Thread::new()).collect(),
            next_thread: 0,
            level_idx: top_level,
            mode: MeMode::Polling,
            mode_since: SimTime::ZERO,
            parked: true,
            step_token: 0,
            stalled_until: SimTime::ZERO,
            acc: ModeAcc::default(),
            window_acc: ModeAcc::default(),
            energy_uj: 0.0,
            level_acc: vec![SimTime::ZERO; top_level + 1],
            switches: 0,
            packets_done: 0,
        }
    }

    /// The current VF operating point.
    pub(crate) fn level(&self, ladder: &VfLadder) -> VfPoint {
        ladder.point(self.level_idx)
    }

    /// Instantaneous power in watts for `mode` at the current level.
    pub(crate) fn power_w(&self, mode: MeMode, ladder: &VfLadder, params: &PowerParams) -> f64 {
        let scale = self.level(ladder).power_scale(&ladder.top());
        match mode {
            MeMode::Busy | MeMode::Polling => params.me_active_w * scale,
            MeMode::Idle | MeMode::Stalled => params.me_active_w * params.idle_factor * scale,
        }
    }

    /// Closes the accounting interval `[mode_since, now]` under the
    /// current mode, accumulating wall time and energy.
    pub(crate) fn account(&mut self, now: SimTime, ladder: &VfLadder, params: &PowerParams) {
        debug_assert!(now >= self.mode_since, "accounting time went backwards");
        let dt = now.saturating_sub(self.mode_since);
        if dt > SimTime::ZERO {
            self.acc.add(self.mode, dt);
            self.window_acc.add(self.mode, dt);
            self.energy_uj += self.power_w(self.mode, ladder, params) * dt.as_secs() * 1e6;
            self.level_acc[self.level_idx] += dt;
        }
        self.mode_since = now;
    }

    /// Accounts up to `now` and switches to `mode`.
    pub(crate) fn set_mode(
        &mut self,
        now: SimTime,
        mode: MeMode,
        ladder: &VfLadder,
        params: &PowerParams,
    ) {
        self.account(now, ladder, params);
        self.mode = mode;
    }

    /// Energy of the still-open interval `[mode_since, now]`, µJ.
    pub(crate) fn pending_energy_uj(
        &self,
        now: SimTime,
        ladder: &VfLadder,
        params: &PowerParams,
    ) -> f64 {
        let dt = now.saturating_sub(self.mode_since);
        self.power_w(self.mode, ladder, params) * dt.as_secs() * 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvs::VfLadder;

    fn me() -> Microengine {
        Microengine::new(MeRole::Rx, 4, VfLadder::xscale_npu().top_index())
    }

    #[test]
    fn mode_acc_tracks_buckets() {
        let mut acc = ModeAcc::default();
        acc.add(MeMode::Busy, SimTime::from_us(3));
        acc.add(MeMode::Idle, SimTime::from_us(1));
        assert_eq!(acc.get(MeMode::Busy), SimTime::from_us(3));
        assert_eq!(acc.total(), SimTime::from_us(4));
        assert!((acc.fraction(MeMode::Idle) - 0.25).abs() < 1e-12);
        acc.reset();
        assert_eq!(acc.total(), SimTime::ZERO);
    }

    #[test]
    fn accounting_accumulates_time_and_energy() {
        let ladder = VfLadder::xscale_npu();
        let params = PowerParams::default();
        let mut m = me();
        m.mode = MeMode::Busy;
        m.mode_since = SimTime::ZERO;
        m.account(SimTime::from_us(10), &ladder, &params);
        assert_eq!(m.acc.get(MeMode::Busy), SimTime::from_us(10));
        // 0.18 W for 10us = 1.8 uJ.
        assert!((m.energy_uj - 1.8).abs() < 1e-9, "energy {}", m.energy_uj);
    }

    #[test]
    fn idle_power_is_reduced() {
        let ladder = VfLadder::xscale_npu();
        let params = PowerParams::default();
        let m = me();
        let busy = m.power_w(MeMode::Busy, &ladder, &params);
        let idle = m.power_w(MeMode::Idle, &ladder, &params);
        assert!((idle / busy - params.idle_factor).abs() < 1e-12);
        // Polling costs the same as busy.
        assert_eq!(m.power_w(MeMode::Polling, &ladder, &params), busy);
    }

    #[test]
    fn lower_level_cuts_power() {
        let ladder = VfLadder::xscale_npu();
        let params = PowerParams::default();
        let mut m = me();
        let top = m.power_w(MeMode::Busy, &ladder, &params);
        m.level_idx = 0;
        let bottom = m.power_w(MeMode::Busy, &ladder, &params);
        assert!((bottom / top - 0.477).abs() < 0.01);
    }

    #[test]
    fn set_mode_closes_interval() {
        let ladder = VfLadder::xscale_npu();
        let params = PowerParams::default();
        let mut m = me();
        m.mode = MeMode::Idle;
        m.set_mode(SimTime::from_us(4), MeMode::Busy, &ladder, &params);
        assert_eq!(m.acc.get(MeMode::Idle), SimTime::from_us(4));
        assert_eq!(m.mode, MeMode::Busy);
        assert_eq!(m.mode_since, SimTime::from_us(4));
    }

    #[test]
    fn pending_energy_matches_future_accounting() {
        let ladder = VfLadder::xscale_npu();
        let params = PowerParams::default();
        let mut m = me();
        m.mode = MeMode::Busy;
        let pending = m.pending_energy_uj(SimTime::from_us(7), &ladder, &params);
        m.account(SimTime::from_us(7), &ladder, &params);
        assert!((pending - m.energy_uj).abs() < 1e-12);
    }

    #[test]
    fn thread_fetch_lifecycle() {
        let mut t = Thread::new();
        assert!(t.needs_fetch());
        t.program = vec![Segment::Compute(10)];
        t.pc = 0;
        assert!(!t.needs_fetch());
        t.pc = 1;
        assert!(t.needs_fetch());
    }
}
