//! The four benchmark applications (paper §3.1), modelled as per-packet
//! segment programs.
//!
//! The paper characterises each application by its memory behaviour:
//!
//! * `ipfwdr` — checks the routing table in SRAM and the output-port
//!   information in SDRAM for every packet; receive MEs also move packet
//!   data into SDRAM. Memory-dependent with meaningful compute.
//! * `url` — routes on URL content, so it "checks the payload of packets
//!   frequently" and needs "a large number of SRAM and SDRAM accesses".
//! * `nat` — "each packet only needs an access to SRAM"; the MEs are kept
//!   busy computing, so EDVS finds no idle time to exploit.
//! * `md4` — computes a 128-bit digest; "moves data packets from SDRAM to
//!   SRAM and accesses SRAM multiple times"; both memory- and
//!   computation-intensive.
//!
//! Segment cycle counts are calibrated (see `DESIGN.md`) so the modelled
//! 4-rx-ME cluster saturates slightly above the paper's high traffic level
//! at 600 MHz and slightly below it at 400 MHz — the regime in which the
//! TDVS threshold/window trade-offs of Figures 6–9 are visible.

use serde::{Deserialize, Serialize};

/// One step of a packet-processing program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Segment {
    /// Execute `n` instructions (one per ME cycle).
    Compute(u32),
    /// One SRAM read/write (thread blocks until completion).
    Sram,
    /// One SDRAM access (~100 core cycles at the controller, plus
    /// queueing). Workload programs chain [`SDRAM_CHAIN`] of these
    /// back-to-back to model dependent transactions (descriptor read →
    /// data burst → status update); the thread re-blocks on each.
    Sdram,
    /// Transmit `bits` over the shared IX bus (thread busy-polls the
    /// transmit-ready status while waiting — not ME idle time).
    BusTx(u32),
}

/// Number of dependent SDRAM accesses chained per workload transaction.
pub const SDRAM_CHAIN: usize = 3;

/// Appends one dependent SDRAM transaction ([`SDRAM_CHAIN`] back-to-back
/// accesses) to a program.
fn push_sdram_txn(p: &mut Vec<Segment>) {
    for _ in 0..SDRAM_CHAIN {
        p.push(Segment::Sdram);
    }
}

/// The benchmark applications of paper §3.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Benchmark {
    /// IP forwarding (Intel SDK reference application).
    Ipfwdr,
    /// URL-based routing.
    Url,
    /// Network address translation.
    Nat,
    /// MD4 digital-signature computation.
    Md4,
}

impl Benchmark {
    /// All four benchmarks, in the paper's order.
    pub const ALL: [Benchmark; 4] = [
        Benchmark::Ipfwdr,
        Benchmark::Url,
        Benchmark::Nat,
        Benchmark::Md4,
    ];

    /// Number of 64-byte transfer chunks in a packet of `size_bytes`.
    fn chunks(size_bytes: u32) -> u32 {
        size_bytes.div_ceil(64)
    }

    /// The receive-side program run for one packet of `size_bytes`.
    ///
    /// All programs start after the packet has been fetched from the
    /// receive FIFO and end by handing the packet to the transmit queue.
    #[must_use]
    pub fn rx_program(self, size_bytes: u32) -> Vec<Segment> {
        let chunks = Self::chunks(size_bytes);
        let mut p = Vec::with_capacity(24);
        match self {
            Benchmark::Ipfwdr => {
                // Receive the packet into SDRAM: per 64-byte chunk, a
                // handful of short instruction bundles each ending in a
                // dependent SDRAM transaction (rx FIFO drain + store).
                for _ in 0..chunks {
                    for _ in 0..4 {
                        p.push(Segment::Compute(85));
                        push_sdram_txn(&mut p);
                    }
                }
                // Route lookup: a trie walk in SRAM.
                for _ in 0..4 {
                    p.push(Segment::Compute(60));
                    p.push(Segment::Sram);
                }
                // Output-port information in SDRAM; header rewrite.
                p.push(Segment::Compute(500));
                push_sdram_txn(&mut p);
                p.push(Segment::Compute(300));
            }
            Benchmark::Url => {
                // Payload scan: every chunk is pulled from SDRAM and
                // matched against SRAM-resident patterns.
                p.push(Segment::Compute(200));
                for _ in 0..chunks {
                    for _ in 0..4 {
                        p.push(Segment::Compute(55));
                        push_sdram_txn(&mut p);
                    }
                    p.push(Segment::Compute(70));
                    p.push(Segment::Sram);
                    p.push(Segment::Compute(70));
                    p.push(Segment::Sram);
                }
                p.push(Segment::Sram);
                p.push(Segment::Compute(300));
            }
            Benchmark::Nat => {
                // One SRAM lookup for the translation table; the rest is
                // header arithmetic — the MEs stay busy.
                p.push(Segment::Compute(1500));
                p.push(Segment::Sram);
                p.push(Segment::Compute(2300));
            }
            Benchmark::Md4 => {
                // Move the packet SDRAM -> SRAM...
                for _ in 0..chunks {
                    p.push(Segment::Compute(50));
                    push_sdram_txn(&mut p);
                    push_sdram_txn(&mut p);
                    p.push(Segment::Sram);
                    p.push(Segment::Sram);
                }
                // ...then digest it (MD4 is ~10 cycles/byte on a RISC core).
                p.push(Segment::Compute(10 * size_bytes.max(64)));
            }
        }
        p
    }

    /// The transmit-side program for one packet of `size_bytes` — shared
    /// by all benchmarks: read the packet back from SDRAM and push it over
    /// the IX bus.
    #[must_use]
    pub fn tx_program(self, size_bytes: u32) -> Vec<Segment> {
        let chunks = Self::chunks(size_bytes);
        let mut p = Vec::with_capacity(8);
        p.push(Segment::Compute(250));
        for _ in 0..chunks.min(2) {
            push_sdram_txn(&mut p);
            p.push(Segment::Compute(80));
        }
        p.push(Segment::BusTx(size_bytes * 8));
        p.push(Segment::Compute(150));
        p
    }

    /// Total compute cycles (excluding memory waits) in the rx program —
    /// useful for capacity estimates and calibration tests.
    #[must_use]
    pub fn rx_compute_cycles(self, size_bytes: u32) -> u64 {
        self.rx_program(size_bytes)
            .iter()
            .map(|s| match s {
                Segment::Compute(n) => u64::from(*n),
                _ => 0,
            })
            .sum()
    }

    /// Number of SDRAM accesses in the rx program.
    #[must_use]
    pub fn rx_sdram_accesses(self, size_bytes: u32) -> usize {
        self.rx_program(size_bytes)
            .iter()
            .filter(|s| matches!(s, Segment::Sdram))
            .count()
    }

    /// Number of SRAM accesses in the rx program.
    #[must_use]
    pub fn rx_sram_accesses(self, size_bytes: u32) -> usize {
        self.rx_program(size_bytes)
            .iter()
            .filter(|s| matches!(s, Segment::Sram))
            .count()
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Benchmark::Ipfwdr => "ipfwdr",
            Benchmark::Url => "url",
            Benchmark::Nat => "nat",
            Benchmark::Md4 => "md4",
        })
    }
}

impl std::str::FromStr for Benchmark {
    type Err = String;

    /// Parses a benchmark name, case-insensitively; the error lists
    /// every known name.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "ipfwdr" => Ok(Benchmark::Ipfwdr),
            "url" => Ok(Benchmark::Url),
            "nat" => Ok(Benchmark::Nat),
            "md4" => Ok(Benchmark::Md4),
            other => {
                let known: Vec<String> = Benchmark::ALL.iter().map(ToString::to_string).collect();
                Err(format!(
                    "unknown benchmark '{other}' (known: {})",
                    known.join(", ")
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_program_contains_compute() {
        for b in Benchmark::ALL {
            for size in [40, 576, 1500] {
                assert!(
                    b.rx_program(size)
                        .iter()
                        .any(|s| matches!(s, Segment::Compute(_))),
                    "{b} rx program for {size}B has no compute"
                );
                assert!(
                    b.tx_program(size)
                        .iter()
                        .any(|s| matches!(s, Segment::Compute(_))),
                    "{b} tx program for {size}B has no compute"
                );
            }
        }
    }

    #[test]
    fn tx_program_transmits_full_packet() {
        for b in Benchmark::ALL {
            let bits: u32 = b
                .tx_program(576)
                .iter()
                .map(|s| match s {
                    Segment::BusTx(bits) => *bits,
                    _ => 0,
                })
                .sum();
            assert_eq!(bits, 576 * 8, "{b}");
        }
    }

    #[test]
    fn nat_is_sram_only() {
        assert_eq!(Benchmark::Nat.rx_sdram_accesses(1500), 0);
        assert_eq!(Benchmark::Nat.rx_sram_accesses(1500), 1);
    }

    #[test]
    fn url_is_memory_heavy() {
        // url "needs a large number of SRAM and SDRAM accesses" — it makes
        // the most SRAM accesses of the four and plenty of SDRAM accesses.
        let sram = |b: Benchmark| b.rx_sram_accesses(576);
        assert!(sram(Benchmark::Url) > sram(Benchmark::Ipfwdr));
        assert!(sram(Benchmark::Url) > sram(Benchmark::Nat));
        assert!(sram(Benchmark::Url) > sram(Benchmark::Md4));
        assert!(Benchmark::Url.rx_sdram_accesses(576) > 50);
    }

    #[test]
    fn md4_is_compute_and_memory_intensive() {
        let md4 = Benchmark::Md4;
        // Most compute of the four (the digest)...
        for other in [Benchmark::Ipfwdr, Benchmark::Url, Benchmark::Nat] {
            assert!(md4.rx_compute_cycles(1500) > other.rx_compute_cycles(1500));
        }
        // ...and it moves data SDRAM -> SRAM, touching SRAM multiple times
        // per chunk.
        assert!(md4.rx_sdram_accesses(1500) > 0);
        assert!(md4.rx_sram_accesses(1500) >= 2 * 24);
    }

    #[test]
    fn programs_scale_with_packet_size() {
        for b in [Benchmark::Ipfwdr, Benchmark::Url, Benchmark::Md4] {
            assert!(
                b.rx_program(1500).len() > b.rx_program(40).len(),
                "{b} should do more work for bigger packets"
            );
        }
    }

    #[test]
    fn chunk_arithmetic() {
        assert_eq!(Benchmark::chunks(40), 1);
        assert_eq!(Benchmark::chunks(64), 1);
        assert_eq!(Benchmark::chunks(65), 2);
        assert_eq!(Benchmark::chunks(1500), 24);
    }

    #[test]
    fn display_names_match_paper() {
        let names: Vec<String> = Benchmark::ALL.iter().map(|b| b.to_string()).collect();
        assert_eq!(names, vec!["ipfwdr", "url", "nat", "md4"]);
    }

    #[test]
    fn from_str_is_case_insensitive_and_lists_names() {
        for b in Benchmark::ALL {
            assert_eq!(b.to_string().parse::<Benchmark>().unwrap(), b);
            assert_eq!(
                b.to_string().to_uppercase().parse::<Benchmark>().unwrap(),
                b
            );
        }
        let err = "quake".parse::<Benchmark>().unwrap_err();
        assert!(err.contains("quake"));
        assert!(err.contains("ipfwdr"));
        assert!(err.contains("md4"));
    }
}
