//! Chip-level energy metering.

use desim::SimTime;
use serde::{Deserialize, Serialize};

/// Aggregates energy by component, in microjoules.
///
/// ME active/idle energy is accounted by the microengines themselves (see
/// `engine`); this meter collects the remaining components and produces
/// chip totals on demand, so the trace's cumulative `energy` annotation is
/// consistent at any instant.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyMeter {
    /// Energy of the DVS monitor hardware (TDVS's 32-bit adder), µJ.
    pub monitor_uj: f64,
}

impl EnergyMeter {
    /// Creates an empty meter.
    #[must_use]
    pub fn new() -> Self {
        EnergyMeter::default()
    }

    /// Adds one monitor-adder activation (on packet arrival under TDVS).
    pub fn add_monitor(&mut self, energy_uj: f64) {
        self.monitor_uj += energy_uj;
    }

    /// Static/background energy consumed over the first `elapsed` of the
    /// run, µJ.
    #[must_use]
    pub fn static_uj(static_w: f64, elapsed: SimTime) -> f64 {
        static_w * elapsed.as_secs() * 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monitor_energy_accumulates() {
        let mut m = EnergyMeter::new();
        for _ in 0..1000 {
            m.add_monitor(8.0e-6);
        }
        assert!((m.monitor_uj - 8.0e-3).abs() < 1e-12);
    }

    #[test]
    fn static_energy_scales_with_time() {
        // 0.3 W for 1 ms = 300 uJ.
        let uj = EnergyMeter::static_uj(0.3, SimTime::from_ms(1));
        assert!((uj - 300.0).abs() < 1e-9);
    }
}
