//! Simulator configuration.
//!
//! Both open axes are configured as declarative specs: the DVS policy
//! as a [`PolicySpec`] (resolved by the `dvs` crate) and the packet
//! source as a [`TrafficSpec`] (resolved by the `traffic` crate) — the
//! simulator never names a concrete policy or generator type. See
//! [`crate::Simulator::with_policy`] and
//! [`crate::Simulator::with_traffic`] for injecting custom
//! implementations directly.

use desim::Frequency;
use dvs::{PolicySpec, VfLadder};
use serde::{Deserialize, Serialize};
use traffic::{ArrivalConfig, TrafficLevel, TrafficSpec};

use crate::memory::MemoryParams;
use crate::workload::Benchmark;

/// Calibration constants of the activity-based power model, all referenced
/// to the top VF level (600 MHz / 1.3 V). Scaling to other levels follows
/// `P ∝ V²f` for active power and energy/access constants for memories.
///
/// The defaults are calibrated so the modelled chip dissipates ≈1.4–1.5 W
/// under full load with no DVS, matching the region the paper's Figures
/// 6–11 span (0.5–2.25 W analysis period).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerParams {
    /// Dynamic power of one fully active ME at the top VF level, in watts.
    pub me_active_w: f64,
    /// Idle (all threads memory-blocked) power as a fraction of active.
    pub idle_factor: f64,
    /// Static + always-on power (StrongARM core, clocks, pads), in watts.
    pub static_w: f64,
}

impl Default for PowerParams {
    fn default() -> Self {
        PowerParams {
            me_active_w: 0.18,
            idle_factor: 0.28,
            static_w: 0.30,
        }
    }
}

/// Trace-emission options. `forward` events are always emitted (the LOC
/// formulas need them); `fifo` and the very chatty per-instruction-bundle
/// `pipeline` events are optional.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Emit a `fifo` event whenever a packet enters the processing queue.
    pub emit_fifo: bool,
    /// Emit `mN_pipeline` events for every execution bundle (costly).
    pub emit_pipeline: bool,
}

/// Full configuration of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NpuConfig {
    /// The benchmark application loaded on the processing MEs (§3.1).
    pub benchmark: Benchmark,
    /// Packet arrival process (§3.2): any registered traffic model,
    /// instantiated with [`NpuConfig::seed`] when the simulator starts.
    pub traffic: TrafficSpec,
    /// Number of receive/processing microengines.
    pub rx_mes: usize,
    /// Number of transmit microengines.
    pub tx_mes: usize,
    /// Hardware threads per microengine.
    pub threads_per_me: usize,
    /// The VF ladder available to DVS.
    pub ladder: VfLadder,
    /// The DVS policy under study.
    pub policy: PolicySpec,
    /// SRAM/SDRAM timing and energy.
    pub memory: MemoryParams,
    /// IX-bus transmit bandwidth in Mbps (1.3 Gbps: IXP1200's 1 Gbps media
    /// bandwidth scaled 1.3× like the memories, §4.1).
    pub bus_rate_mbps: f64,
    /// Receive FIFO capacity in packets (drops beyond this are the trace's
    /// packet-loss counter).
    pub rx_fifo_cap: usize,
    /// Processed-packet queue capacity in packets.
    pub tx_queue_cap: usize,
    /// Power-model calibration.
    pub power: PowerParams,
    /// Trace-emission options.
    pub trace: TraceConfig,
    /// Statistics window used when the policy defines none (noDVS runs):
    /// per-ME idle fractions are sampled at this granularity.
    pub stats_window_cycles: u64,
    /// Experiment seed (drives arrivals).
    pub seed: u64,
}

impl NpuConfig {
    /// Starts a builder with the paper's reference platform.
    #[must_use]
    pub fn builder() -> NpuConfigBuilder {
        NpuConfigBuilder::new()
    }

    /// The base (normal) core frequency — the top of the ladder.
    #[must_use]
    pub fn base_freq(&self) -> Frequency {
        self.ladder.top().frequency()
    }

    /// Total number of microengines.
    #[must_use]
    pub fn total_mes(&self) -> usize {
        self.rx_mes + self.tx_mes
    }

    /// Validates cross-field invariants.
    ///
    /// # Panics
    ///
    /// Panics when the configuration cannot describe a runnable machine
    /// (no MEs, no threads, zero-capacity FIFOs, non-positive bus rate),
    /// or when `schedule:` traffic rides a ladder whose base clock is
    /// not the one schedule windows are defined in.
    pub fn validate(&self) {
        assert!(self.rx_mes > 0, "need at least one receive ME");
        assert!(self.tx_mes > 0, "need at least one transmit ME");
        assert!(self.threads_per_me > 0, "need at least one thread per ME");
        assert!(self.rx_fifo_cap > 0, "rx fifo must hold packets");
        assert!(self.tx_queue_cap > 0, "tx queue must hold packets");
        assert!(
            self.bus_rate_mbps.is_finite() && self.bus_rate_mbps > 0.0,
            "bus rate must be positive"
        );
        assert!(
            self.stats_window_cycles > 0,
            "stats window must be non-empty"
        );
        // Schedule windows are cycle counts of a fixed base clock; a
        // ladder topping at another frequency would convert `cycles`
        // horizons and traffic windows at different rates, silently
        // shifting every segment boundary relative to the run.
        if matches!(self.traffic, TrafficSpec::Schedule(_)) {
            assert!(
                self.base_freq().as_khz() == traffic::ScheduleConfig::base_clock().as_khz(),
                "schedule traffic windows are defined in cycles of the {} MHz base \
                 clock, but this ladder tops at {} MHz",
                traffic::ScheduleConfig::base_clock().as_mhz(),
                self.base_freq().as_mhz(),
            );
        }
    }
}

impl Default for NpuConfig {
    fn default() -> Self {
        NpuConfig::builder().build()
    }
}

/// Builder for [`NpuConfig`] (the IXP1200 reference platform by default).
#[derive(Debug, Clone)]
pub struct NpuConfigBuilder {
    config: NpuConfig,
}

impl NpuConfigBuilder {
    /// Creates a builder seeded with the reference platform: 4 rx + 2 tx
    /// MEs, 4 threads each, XScale ladder, no DVS, medium traffic, ipfwdr.
    #[must_use]
    pub fn new() -> Self {
        NpuConfigBuilder {
            config: NpuConfig {
                benchmark: Benchmark::Ipfwdr,
                traffic: TrafficSpec::Level(TrafficLevel::Medium),
                rx_mes: 4,
                tx_mes: 2,
                threads_per_me: 4,
                ladder: VfLadder::xscale_npu(),
                policy: PolicySpec::NoDvs,
                memory: MemoryParams::ixp1200_scaled(),
                bus_rate_mbps: 1300.0,
                rx_fifo_cap: 2048,
                tx_queue_cap: 2048,
                power: PowerParams::default(),
                trace: TraceConfig::default(),
                stats_window_cycles: 40_000,
                seed: 0,
            },
        }
    }

    /// Sets the benchmark application.
    #[must_use]
    pub fn benchmark(mut self, benchmark: Benchmark) -> Self {
        self.config.benchmark = benchmark;
        self
    }

    /// Sets the traffic model: a [`TrafficSpec`], or a plain
    /// [`TrafficLevel`] for the paper's canonical arrival processes.
    #[must_use]
    pub fn traffic(mut self, traffic: impl Into<TrafficSpec>) -> Self {
        self.config.traffic = traffic.into();
        self
    }

    /// Sets a fully custom MMPP arrival process (shorthand for
    /// `.traffic(TrafficSpec::Mmpp(arrivals))`).
    #[must_use]
    pub fn arrivals(self, arrivals: ArrivalConfig) -> Self {
        self.traffic(TrafficSpec::Mmpp(arrivals))
    }

    /// Sets the DVS policy.
    #[must_use]
    pub fn policy(mut self, policy: PolicySpec) -> Self {
        self.config.policy = policy;
        self
    }

    /// Sets the experiment seed (the traffic model's stream is
    /// instantiated with it when the simulator starts).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets trace-emission options.
    #[must_use]
    pub fn trace(mut self, trace: TraceConfig) -> Self {
        self.config.trace = trace;
        self
    }

    /// Sets the power-model calibration.
    #[must_use]
    pub fn power(mut self, power: PowerParams) -> Self {
        self.config.power = power;
        self
    }

    /// Sets the memory timing/energy parameters.
    #[must_use]
    pub fn memory(mut self, memory: MemoryParams) -> Self {
        self.config.memory = memory;
        self
    }

    /// Sets the ME topology.
    #[must_use]
    pub fn topology(mut self, rx_mes: usize, tx_mes: usize, threads_per_me: usize) -> Self {
        self.config.rx_mes = rx_mes;
        self.config.tx_mes = tx_mes;
        self.config.threads_per_me = threads_per_me;
        self
    }

    /// Finalises the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is not runnable (see
    /// [`NpuConfig::validate`]).
    #[must_use]
    pub fn build(self) -> NpuConfig {
        self.config.validate();
        self.config
    }
}

impl Default for NpuConfigBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvs::{EdvsConfig, PolicyKind, TdvsConfig};

    #[test]
    fn schedule_traffic_requires_the_schedule_base_clock() {
        let schedule: TrafficSpec = "schedule:segments=[low@0..200000; high@200000..]"
            .parse()
            .unwrap();
        // On the reference 600 MHz ladder a schedule validates fine...
        let _ = NpuConfig::builder().traffic(schedule.clone()).build();
        // ...but a ladder topping elsewhere would convert the windows
        // at a different rate than the horizon, so it is rejected.
        let mut config = NpuConfig::builder().traffic(schedule).build();
        config.ladder = dvs::VfLadder::from_points(vec![
            dvs::VfPoint {
                freq_mhz: 200,
                voltage_mv: 900,
            },
            dvs::VfPoint {
                freq_mhz: 800,
                voltage_mv: 1400,
            },
        ]);
        let panic = std::panic::catch_unwind(move || config.validate()).unwrap_err();
        let message = panic.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(message.contains("600"), "unhelpful panic: {message}");
        // A non-schedule spec stays free to use any ladder.
        let mut config = NpuConfig::builder().traffic(TrafficLevel::Low).build();
        config.ladder = dvs::VfLadder::from_points(vec![dvs::VfPoint {
            freq_mhz: 800,
            voltage_mv: 1400,
        }]);
        config.validate();
    }

    #[test]
    fn default_is_reference_platform() {
        let c = NpuConfig::default();
        assert_eq!(c.rx_mes, 4);
        assert_eq!(c.tx_mes, 2);
        assert_eq!(c.total_mes(), 6);
        assert_eq!(c.threads_per_me, 4);
        assert_eq!(c.base_freq().as_mhz(), 600.0);
        assert_eq!(c.policy.kind(), PolicyKind::NoDvs);
    }

    #[test]
    fn builder_accepts_levels_and_specs() {
        let c = NpuConfig::builder().seed(99).build();
        assert_eq!(c.seed, 99);
        assert_eq!(c.traffic, TrafficSpec::Level(TrafficLevel::Medium));

        let c = NpuConfig::builder().traffic(TrafficLevel::High).build();
        assert_eq!(c.traffic, TrafficSpec::Level(TrafficLevel::High));

        let spec: TrafficSpec = "constant:rate=500".parse().unwrap();
        let c = NpuConfig::builder().traffic(spec.clone()).build();
        assert_eq!(c.traffic, spec);
    }

    #[test]
    fn policy_window_cycles() {
        assert_eq!(PolicySpec::NoDvs.window_cycles(), None);
        let t = PolicySpec::Tdvs(TdvsConfig {
            top_threshold_mbps: 1000.0,
            window_cycles: 20_000,
        });
        assert_eq!(t.window_cycles(), Some(20_000));
        let e = PolicySpec::Edvs(EdvsConfig::default());
        assert_eq!(e.window_cycles(), Some(40_000));
    }

    #[test]
    #[should_panic(expected = "receive ME")]
    fn build_rejects_no_rx_mes() {
        let _ = NpuConfig::builder().topology(0, 2, 4).build();
    }

    #[test]
    fn trace_defaults_are_quiet() {
        let t = TraceConfig::default();
        assert!(!t.emit_fifo);
        assert!(!t.emit_pipeline);
    }
}
