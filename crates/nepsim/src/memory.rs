//! SRAM/SDRAM controllers and the shared IX transmit bus.
//!
//! Both memories run at fixed clocks independent of the ME VF levels
//! (DVS scales only the microengines; the paper scales the memory and bus
//! clocks once, to 1.3× the IXP1200, and leaves them fixed). Each
//! controller is modelled as a single-server queue: an access occupies the
//! controller for a fixed service time and completes after the queueing
//! delay plus a fixed access latency. This reproduces the behaviour §4.2
//! relies on — "an SDRAM access can take as much as 100 clock cycles"
//! under contention.

use desim::SimTime;
use serde::{Deserialize, Serialize};

/// Timing and energy of the two memories.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryParams {
    /// SRAM pipeline latency.
    pub sram_latency: SimTime,
    /// SRAM controller occupancy per access.
    pub sram_service: SimTime,
    /// SRAM energy per access, µJ.
    pub sram_energy_uj: f64,
    /// SDRAM access latency (precharge + activate + burst).
    pub sdram_latency: SimTime,
    /// SDRAM controller occupancy per access.
    pub sdram_service: SimTime,
    /// SDRAM energy per access, µJ.
    pub sdram_energy_uj: f64,
}

impl MemoryParams {
    /// IXP1200 memory system scaled 1.3× (paper §4.1): SRAM ≈ 30 ns
    /// latency; SDRAM ≈ 180 ns per access — 108 cycles of the 600 MHz core
    /// clock, the paper's "an SDRAM access can take as much as 100 clock
    /// cycles". Workload `Sdram` segments issue *dependent chains* of
    /// these accesses (see [`crate::Segment::Sdram`]).
    #[must_use]
    pub fn ixp1200_scaled() -> Self {
        MemoryParams {
            sram_latency: SimTime::from_ns(30),
            sram_service: SimTime::from_ns(8),
            sram_energy_uj: 2.0e-3 * 1e-3, // 2 nJ
            sdram_latency: SimTime::from_ns(180),
            sdram_service: SimTime::from_ns(15),
            sdram_energy_uj: 8.0e-3 * 1e-3, // 8 nJ
        }
    }
}

impl Default for MemoryParams {
    fn default() -> Self {
        MemoryParams::ixp1200_scaled()
    }
}

/// A single-server memory controller (used for both SRAM and SDRAM).
///
/// # Example
///
/// ```
/// use desim::SimTime;
/// use nepsim::MemoryController;
///
/// let mut sram = MemoryController::new(SimTime::from_ns(30), SimTime::from_ns(8), 2.0e-6);
/// let t0 = SimTime::from_us(1);
/// let done_a = sram.issue(t0);
/// let done_b = sram.issue(t0); // queues behind the first access
/// assert_eq!(done_a, t0 + SimTime::from_ns(30));
/// assert_eq!(done_b, t0 + SimTime::from_ns(8) + SimTime::from_ns(30));
/// ```
#[derive(Debug, Clone)]
pub struct MemoryController {
    latency: SimTime,
    service: SimTime,
    energy_per_access_uj: f64,
    busy_until: SimTime,
    accesses: u64,
    energy_uj: f64,
    total_wait: SimTime,
}

impl MemoryController {
    /// Creates a controller with the given access latency, per-access
    /// occupancy and per-access energy (µJ).
    #[must_use]
    pub fn new(latency: SimTime, service: SimTime, energy_per_access_uj: f64) -> Self {
        MemoryController {
            latency,
            service,
            energy_per_access_uj,
            busy_until: SimTime::ZERO,
            accesses: 0,
            energy_uj: 0.0,
            total_wait: SimTime::ZERO,
        }
    }

    /// Issues an access at time `now`; returns its completion time.
    ///
    /// Calls must be made in non-decreasing time order — the single
    /// `busy_until` register cannot represent idle gaps between future
    /// reservations, so out-of-order issue would inflate queueing delay.
    /// The event-driven simulator satisfies this by construction.
    pub fn issue(&mut self, now: SimTime) -> SimTime {
        let start = now.max(self.busy_until);
        self.busy_until = start + self.service;
        let done = start + self.latency;
        self.accesses += 1;
        self.energy_uj += self.energy_per_access_uj;
        self.total_wait += done - now;
        done
    }

    /// Total accesses issued.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total energy consumed, µJ.
    #[must_use]
    pub fn energy_uj(&self) -> f64 {
        self.energy_uj
    }

    /// Mean end-to-end access time (queueing + latency).
    #[must_use]
    pub fn mean_access_time(&self) -> SimTime {
        if self.accesses == 0 {
            SimTime::ZERO
        } else {
            self.total_wait / self.accesses
        }
    }
}

/// The shared transmit bus: a fixed-rate serial resource.
///
/// Transmitting MEs busy-poll the transmit-ready status while waiting for
/// the bus, so bus waits count as *active* (not idle) time — the reason
/// the paper's tx MEs show <5 % idle even when transmit-constrained.
#[derive(Debug, Clone)]
pub struct TxBus {
    /// Bus rate in bits per microsecond (== Mbps).
    rate_mbps: f64,
    busy_until: SimTime,
    bits_sent: u64,
}

impl TxBus {
    /// Creates a bus with the given rate in Mbps.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not positive and finite.
    #[must_use]
    pub fn new(rate_mbps: f64) -> Self {
        assert!(
            rate_mbps.is_finite() && rate_mbps > 0.0,
            "bus rate must be positive"
        );
        TxBus {
            rate_mbps,
            busy_until: SimTime::ZERO,
            bits_sent: 0,
        }
    }

    /// Requests transmission of `bits` at time `now`; returns the time the
    /// transfer completes (after any wait for the bus).
    pub fn issue(&mut self, now: SimTime, bits: u32) -> SimTime {
        let start = now.max(self.busy_until);
        let dur = SimTime::from_us_f64(f64::from(bits) / self.rate_mbps);
        self.busy_until = start + dur;
        self.bits_sent += u64::from(bits);
        self.busy_until
    }

    /// Total bits pushed through the bus.
    #[must_use]
    pub fn bits_sent(&self) -> u64 {
        self.bits_sent
    }

    /// The configured rate in Mbps.
    #[must_use]
    pub fn rate_mbps(&self) -> f64 {
        self.rate_mbps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sram() -> MemoryController {
        let p = MemoryParams::ixp1200_scaled();
        MemoryController::new(p.sram_latency, p.sram_service, p.sram_energy_uj)
    }

    #[test]
    fn uncontended_access_takes_base_latency() {
        let mut m = sram();
        let done = m.issue(SimTime::from_us(5));
        assert_eq!(done, SimTime::from_us(5) + SimTime::from_ns(30));
        assert_eq!(m.accesses(), 1);
    }

    #[test]
    fn contention_queues_accesses() {
        let mut m = sram();
        let t = SimTime::from_us(1);
        let mut last = SimTime::ZERO;
        for k in 0..10 {
            let done = m.issue(t);
            assert!(done > last, "access {k} finished out of order");
            last = done;
        }
        // 10 accesses: last one waits 9 service slots + latency.
        assert_eq!(last, t + SimTime::from_ns(9 * 8) + SimTime::from_ns(30));
        assert!(m.mean_access_time() > SimTime::from_ns(30));
    }

    #[test]
    fn controller_drains_when_idle() {
        let mut m = sram();
        m.issue(SimTime::from_us(1));
        // Much later: no queueing.
        let done = m.issue(SimTime::from_us(100));
        assert_eq!(done, SimTime::from_us(100) + SimTime::from_ns(30));
    }

    #[test]
    fn sdram_is_slower_than_sram() {
        let p = MemoryParams::ixp1200_scaled();
        assert!(p.sdram_latency > p.sram_latency);
        assert!(p.sdram_service > p.sram_service);
        assert!(p.sdram_energy_uj > p.sram_energy_uj);
        // ~108 cycles at 600MHz base latency — the paper's "as much as
        // 100 clock cycles" per access.
        let f = desim::Frequency::from_mhz(600);
        assert_eq!(f.time_to_cycles(p.sdram_latency), 108);
    }

    #[test]
    fn energy_accumulates_per_access() {
        let mut m = sram();
        for _ in 0..1000 {
            m.issue(SimTime::from_us(1));
        }
        assert!((m.energy_uj() - 1000.0 * 2.0e-6).abs() < 1e-12);
    }

    #[test]
    fn bus_serialises_transfers() {
        let mut bus = TxBus::new(1300.0);
        let t = SimTime::from_us(10);
        let a = bus.issue(t, 13_000); // 10us at 1.3Gbps
        let b = bus.issue(t, 13_000);
        assert_eq!(a, SimTime::from_us(20));
        assert_eq!(b, SimTime::from_us(30));
        assert_eq!(bus.bits_sent(), 26_000);
    }

    #[test]
    fn bus_rate_caps_throughput() {
        let mut bus = TxBus::new(1300.0);
        let mut now = SimTime::ZERO;
        // Saturate for 1ms.
        while now < SimTime::from_ms(1) {
            now = bus.issue(now, 12_000);
        }
        let mbps = bus.bits_sent() as f64 / now.as_us();
        assert!((mbps - 1300.0).abs() < 20.0, "bus rate {mbps}");
    }

    #[test]
    #[should_panic(expected = "bus rate must be positive")]
    fn bus_rejects_zero_rate() {
        let _ = TxBus::new(0.0);
    }
}
