//! The event-driven simulation core.
//!
//! # Model
//!
//! The simulator advances in discrete events over picosecond time:
//!
//! * **Arrivals** come from a [`traffic::PacketStream`] and enter the
//!   bounded receive FIFO (overflow = packet loss).
//! * Each **microengine** executes one thread at a time. Compute segments
//!   advance the ME's clock in bulk (one event per segment); memory
//!   accesses block the issuing thread and the ME context-switches to the
//!   next ready thread. When *all* threads are blocked on memory the ME is
//!   **idle** (the EDVS signal); when threads are waiting for packets or
//!   the transmit bus the ME **busy-polls** (active power, not idle) —
//!   exactly the §4.2 distinction.
//! * **DVS windows** fire every `window_cycles` of the base 600 MHz clock;
//!   the configured policy observes the window (traffic volume for TDVS,
//!   per-ME idle fraction for EDVS) and VF switches stall the affected MEs
//!   for the 10 µs penalty.
//!
//! A VF change takes effect from the next segment the ME issues; a compute
//! segment already in flight completes at its issue-time frequency. At the
//! segment granularity of this model the deferral is at most a few hundred
//! cycles and is dwarfed by the 6000-cycle switch penalty.

use std::collections::VecDeque;

use desim::{EventQueue, SimTime};
use dvs::{
    DvsPolicy, MeObservation, PolicyObservation, QueueObservation, ScalingDecision,
    MONITOR_ADDER_ENERGY_UJ, SWITCH_PENALTY,
};
use loc::{Annotations, Trace};
use obs::{Channel, NullRecorder, Recorder, Recording};
use traffic::{Packet, PacketSource, RecordedTrace, TrafficModel};

use crate::config::NpuConfig;
use crate::engine::{MeMode, MeRole, Microengine, ThreadState};
use crate::memory::{MemoryController, TxBus};
use crate::power::EnergyMeter;
use crate::report::{MeReport, SimReport, WindowIdleSample};
use crate::trace_out::TraceCollector;
use crate::workload::Segment;

/// Simulation events.
#[derive(Debug)]
enum Ev {
    /// A packet arrives at a device port.
    Arrival(Packet),
    /// A memory access or bus transfer issued by `(me, thread)` completed.
    Done { me: usize, thread: usize },
    /// A microengine's scheduled continuation (compute end, stall end).
    MeStep { me: usize, token: u64 },
    /// DVS monitor-window boundary.
    Window,
}

/// The NePSim-style simulator. See the [crate docs](crate) for the model
/// and [`NpuConfig`] for the knobs.
///
/// # Example
///
/// ```
/// use nepsim::{Benchmark, NpuConfig, Simulator};
///
/// let mut sim = Simulator::new(NpuConfig::builder().benchmark(Benchmark::Nat).build());
/// let report = sim.run_cycles(100_000);
/// assert!(report.arrived_packets > 0);
/// ```
#[derive(Debug)]
pub struct Simulator {
    config: NpuConfig,
    queue: EventQueue<Ev>,
    mes: Vec<Microengine>,
    sram: MemoryController,
    sdram: MemoryController,
    bus: TxBus,
    rx_fifo: VecDeque<Packet>,
    tx_queue: VecDeque<Packet>,
    arrivals: PacketSource,
    policy: Box<dyn DvsPolicy>,
    /// Cached `policy.monitors_traffic()` — consulted on every arrival.
    monitor_per_packet: bool,
    meter: EnergyMeter,
    trace: TraceCollector,
    recorder: Box<dyn Recorder>,
    /// Chip energy at the last recorded window boundary, µJ. Touched
    /// only when the recorder is enabled (power-channel deltas).
    rec_energy_uj: f64,
    /// Forwarded bits at the last recorded window boundary. Touched
    /// only when the recorder is enabled (served-bytes deltas).
    rec_forwarded_bits: u64,
    /// Cached `recorder.enabled()` — consulted on every forwarded
    /// packet, mirroring `monitor_per_packet`.
    rec_enabled: bool,
    /// Sojourn time (arrival to forward) summed over the packets
    /// forwarded this window, µs. Touched only when the recorder is
    /// enabled (queue-wait channel).
    window_wait_us: f64,
    /// Packets behind `window_wait_us`.
    window_wait_n: u64,
    window_dur: SimTime,
    window_bits: u64,
    window_rx_drops: u64,
    window_tx_drops: u64,
    windows: u64,
    window_idle: Vec<WindowIdleSample>,
    arrived_packets: u64,
    arrived_bits: u64,
    dropped_packets: u64,
    dropped_tx_packets: u64,
    forwarded_packets: u64,
    forwarded_bits: u64,
    end: SimTime,
    started: bool,
}

impl Simulator {
    /// Builds a simulator from a validated configuration.
    #[must_use]
    pub fn new(config: NpuConfig) -> Self {
        config.validate();
        // The traffic spec was validated by its grammar; only IO (a
        // missing trace file) can fail here, and that is a broken
        // configuration, not a recoverable state.
        let traffic = config
            .traffic
            .model()
            .unwrap_or_else(|e| panic!("invalid traffic spec: {e}"));
        let top = config.ladder.top_index();
        let mes: Vec<Microengine> = (0..config.total_mes())
            .map(|i| {
                let role = if i < config.rx_mes {
                    MeRole::Rx
                } else {
                    MeRole::Tx
                };
                Microengine::new(role, config.threads_per_me, top)
            })
            .collect();
        let policy = config.policy.build(&config.ladder);
        // Windows always fire: the policy's window if it has one, the
        // statistics window otherwise (idle sampling under noDVS).
        let window_dur = config
            .base_freq()
            .cycles_to_time(policy.window_cycles().unwrap_or(config.stats_window_cycles));
        let mem = config.memory;
        Simulator {
            queue: EventQueue::new(),
            mes,
            sram: MemoryController::new(mem.sram_latency, mem.sram_service, mem.sram_energy_uj),
            sdram: MemoryController::new(mem.sdram_latency, mem.sdram_service, mem.sdram_energy_uj),
            bus: TxBus::new(config.bus_rate_mbps),
            rx_fifo: VecDeque::new(),
            tx_queue: VecDeque::new(),
            arrivals: traffic.stream(config.seed),
            monitor_per_packet: policy.monitors_traffic(),
            policy,
            meter: EnergyMeter::new(),
            trace: TraceCollector::new(config.trace),
            recorder: Box::new(NullRecorder),
            rec_energy_uj: 0.0,
            rec_forwarded_bits: 0,
            rec_enabled: false,
            window_wait_us: 0.0,
            window_wait_n: 0,
            window_dur,
            window_bits: 0,
            window_rx_drops: 0,
            window_tx_drops: 0,
            windows: 0,
            window_idle: Vec::new(),
            arrived_packets: 0,
            arrived_bits: 0,
            dropped_packets: 0,
            dropped_tx_packets: 0,
            forwarded_packets: 0,
            forwarded_bits: 0,
            end: SimTime::ZERO,
            started: false,
            config,
        }
    }

    /// The configuration this simulator runs.
    #[must_use]
    pub fn config(&self) -> &NpuConfig {
        &self.config
    }

    /// Replaces the live arrival generator with a recorded trace — the
    /// paper's replay-a-sampled-trace workflow (§3.2). The configured
    /// `traffic` spec is ignored; every other knob applies unchanged.
    ///
    /// # Panics
    ///
    /// Panics if the simulator has already run.
    #[must_use]
    pub fn with_replay(mut self, trace: RecordedTrace) -> Self {
        assert!(!self.started, "cannot swap arrivals after running");
        self.arrivals = PacketSource::new(trace.into_iter());
        self
    }

    /// Replaces the configured traffic model with an arbitrary
    /// [`TrafficModel`] implementation — the escape hatch for packet
    /// sources that live outside the `traffic` registry, mirroring
    /// [`Simulator::with_policy`]. The model is instantiated with the
    /// configured seed; the `traffic` spec is ignored.
    ///
    /// # Panics
    ///
    /// Panics if the simulator has already run.
    #[must_use]
    pub fn with_traffic(mut self, model: &dyn TrafficModel) -> Self {
        assert!(!self.started, "cannot swap arrivals after running");
        self.arrivals = model.stream(self.config.seed);
        self
    }

    /// Attaches a [`Recorder`] receiving one sample per [`Channel`] at
    /// every monitor-window boundary. The default [`NullRecorder`]
    /// reports disabled, so an unattached run computes no samples; an
    /// attached recorder never feeds back into the simulation, so the
    /// run's [`SimReport`] stays bit-identical either way
    /// (`crates/core/tests/determinism.rs` guards this).
    ///
    /// # Panics
    ///
    /// Panics if the simulator has already run.
    #[must_use]
    pub fn with_recorder(mut self, recorder: Box<dyn Recorder>) -> Self {
        assert!(!self.started, "cannot attach a recorder after running");
        self.rec_enabled = recorder.enabled();
        self.recorder = recorder;
        self
    }

    /// Takes the recording accumulated so far, leaving the recorder
    /// empty. Empty unless a [`Simulator::with_recorder`] recorder was
    /// attached before the run.
    pub fn take_recording(&mut self) -> Recording {
        self.recorder.take()
    }

    /// Replaces the configured policy with an arbitrary [`DvsPolicy`]
    /// implementation — the escape hatch for policies that live outside
    /// the `dvs` registry (see the trait docs for a walkthrough). The
    /// configured `policy` spec is ignored; the monitor window and
    /// per-packet monitor overhead follow the injected policy.
    ///
    /// # Panics
    ///
    /// Panics if the simulator has already run.
    #[must_use]
    pub fn with_policy(mut self, policy: Box<dyn DvsPolicy>) -> Self {
        assert!(!self.started, "cannot swap the policy after running");
        self.window_dur = self.config.base_freq().cycles_to_time(
            policy
                .window_cycles()
                .unwrap_or(self.config.stats_window_cycles),
        );
        self.monitor_per_packet = policy.monitors_traffic();
        self.policy = policy;
        self
    }

    /// Runs for `cycles` of the base (600 MHz) clock — the paper runs
    /// 8×10⁶ cycles per configuration — and returns the report.
    pub fn run_cycles(&mut self, cycles: u64) -> SimReport {
        let dur = self.config.base_freq().cycles_to_time(cycles);
        self.run_for(dur)
    }

    /// Runs for a span of simulated time and returns the report.
    ///
    /// # Panics
    ///
    /// Panics if called twice — a simulator instance models one run.
    pub fn run_for(&mut self, dur: SimTime) -> SimReport {
        let _prof = obs::prof::span("simulate");
        self.start(dur);
        self.drain_until(dur);
        self.close_accounting(dur);
        let report = self.build_report(dur);
        obs::tally_kernel(&report.kernel);
        report
    }

    /// Runs one simulation to each of the strictly increasing cycle
    /// `boundaries` (of the base 600 MHz clock) and returns one
    /// **cumulative** report snapshot per boundary; the last boundary
    /// is the run's horizon, so the final snapshot is the whole-run
    /// report [`Simulator::run_cycles`] would have produced.
    ///
    /// This is the primitive behind per-segment scenario metrics: a
    /// caller diffs consecutive snapshots to attribute energy, drops
    /// and idle time to each window slice, from a *single* simulation —
    /// the chip state (FIFO contents, VF levels, policy state) carries
    /// across boundaries exactly as in an unsegmented run. Events
    /// landing exactly on a boundary are included in the earlier slice,
    /// matching the inclusive-horizon semantics of [`run_for`].
    ///
    /// # Panics
    ///
    /// Panics if called after the simulator has run, if `boundaries` is
    /// empty, or if the boundaries are not strictly increasing from a
    /// non-zero first boundary.
    pub fn run_cycle_segments(&mut self, boundaries: &[u64]) -> Vec<SimReport> {
        assert!(!boundaries.is_empty(), "need at least one boundary");
        assert!(boundaries[0] > 0, "the first boundary must be positive");
        assert!(
            boundaries.windows(2).all(|w| w[0] < w[1]),
            "boundaries must be strictly increasing"
        );
        let _prof = obs::prof::span("simulate");
        let times: Vec<SimTime> = boundaries
            .iter()
            .map(|&c| self.config.base_freq().cycles_to_time(c))
            .collect();
        self.start(*times.last().expect("non-empty boundaries"));
        let mut reports = Vec::with_capacity(times.len());
        for t in times {
            self.drain_until(t);
            self.close_accounting(t);
            reports.push(self.build_report(t));
        }
        // Snapshots are cumulative, so only the final (whole-run) one
        // enters the process-wide kernel tally.
        if let Some(last) = reports.last() {
            obs::tally_kernel(&last.kernel);
        }
        reports
    }

    /// Marks the run started and schedules the bootstrap events: first
    /// arrival, first window, and a step for every ME (which parks them
    /// polling their empty input queues).
    fn start(&mut self, dur: SimTime) {
        assert!(!self.started, "a Simulator instance runs exactly once");
        self.started = true;
        self.end = dur;
        if let Some(p) = self.arrivals.next() {
            self.queue.schedule(p.arrival, Ev::Arrival(p));
        }
        self.queue.schedule(self.window_dur, Ev::Window);
        for m in 0..self.mes.len() {
            let token = self.mes[m].step_token;
            self.queue
                .schedule(SimTime::ZERO, Ev::MeStep { me: m, token });
        }
    }

    /// Processes every queued event at or before `cap`, leaving later
    /// events queued. Popping is globally time-ordered, so draining in
    /// stages processes the exact event sequence of a single drain.
    fn drain_until(&mut self, cap: SimTime) {
        while let Some(t) = self.queue.peek_time() {
            if t > cap {
                break;
            }
            let (now, ev) = self.queue.pop().expect("peeked event exists");
            self.handle(ev, now);
        }
    }

    /// Closes every ME's open accounting interval at `at` (safe
    /// mid-run: accounting resumes from `at`).
    fn close_accounting(&mut self, at: SimTime) {
        for m in 0..self.mes.len() {
            self.mes[m].account(at, &self.config.ladder, &self.config.power);
        }
    }

    /// The trace collected so far (borrow).
    #[must_use]
    pub fn trace(&self) -> &Trace {
        self.trace.trace()
    }

    /// Mean end-to-end SDRAM access time observed so far (queueing +
    /// latency) — the quantity the paper quotes as "as much as 100 clock
    /// cycles".
    #[must_use]
    pub fn sdram_mean_access_time(&self) -> SimTime {
        self.sdram.mean_access_time()
    }

    /// Mean end-to-end SRAM access time observed so far.
    #[must_use]
    pub fn sram_mean_access_time(&self) -> SimTime {
        self.sram.mean_access_time()
    }

    /// Consumes the simulator and returns the collected trace.
    #[must_use]
    pub fn into_trace(self) -> Trace {
        self.trace.into_trace()
    }

    // ------------------------------------------------------------------
    // Event handling
    // ------------------------------------------------------------------

    fn handle(&mut self, ev: Ev, now: SimTime) {
        match ev {
            Ev::Arrival(p) => self.on_arrival(p, now),
            Ev::Done { me, thread } => self.on_done(me, thread, now),
            Ev::MeStep { me, token } => {
                if self.mes[me].step_token == token {
                    self.run_me(me, now);
                }
            }
            Ev::Window => self.on_window(now),
        }
    }

    fn on_arrival(&mut self, p: Packet, now: SimTime) {
        self.arrived_packets += 1;
        self.arrived_bits += p.size_bits();
        self.window_bits += p.size_bits();
        if self.monitor_per_packet {
            self.meter.add_monitor(MONITOR_ADDER_ENERGY_UJ);
        }

        // Schedule the next arrival.
        if let Some(next) = self.arrivals.next() {
            if next.arrival <= self.end {
                self.queue
                    .schedule(next.arrival.max(now), Ev::Arrival(next));
            }
        }

        if self.rx_fifo.len() < self.config.rx_fifo_cap {
            self.rx_fifo.push_back(p);
            let annots = self.fifo_annotations(now);
            self.trace.fifo(annots);
            self.wake_role(MeRole::Rx, now);
        } else {
            self.dropped_packets += 1;
            self.window_rx_drops += 1;
        }
    }

    fn on_done(&mut self, me: usize, thread: usize, now: SimTime) {
        self.mes[me].threads[thread].state = ThreadState::Ready;
        if self.mes[me].parked {
            self.run_me(me, now);
        }
    }

    fn on_window(&mut self, now: SimTime) {
        let window_dur = self.window_dur;
        self.windows += 1;
        // Close accounting so window buckets are complete.
        for m in 0..self.mes.len() {
            self.mes[m].account(now, &self.config.ladder, &self.config.power);
        }
        // Sample per-ME idle fractions (the §4.2 observation data) and
        // assemble the policy's view of each microengine.
        let mut me_obs = Vec::with_capacity(self.mes.len());
        for (m, me) in self.mes.iter().enumerate() {
            let idle =
                (me.window_acc.get(MeMode::Idle).as_secs() / window_dur.as_secs()).clamp(0.0, 1.0);
            self.window_idle.push(WindowIdleSample {
                window: self.windows - 1,
                me: m,
                role: me.role,
                idle,
            });
            me_obs.push(MeObservation {
                idle_fraction: idle,
                level: me.level_idx,
            });
        }

        // Emit the epoch's observability samples. Everything inside the
        // guard is pure observation — the branch computes nothing the
        // simulation reads back, so a disabled recorder costs one
        // virtual call per window and an enabled one cannot perturb
        // the run.
        if self.recorder.enabled() {
            let cycle = self.config.base_freq().time_to_cycles(now);
            // Accounting was closed above, so the energy is exact; the
            // delta over the window duration is the epoch's mean power
            // (µJ / µs = W).
            let energy_uj = self.total_energy_uj(now);
            let power_w = (energy_uj - self.rec_energy_uj) / window_dur.as_us();
            self.rec_energy_uj = energy_uj;
            let served_bits = self.forwarded_bits - self.rec_forwarded_bits;
            self.rec_forwarded_bits = self.forwarded_bits;
            let mean_level =
                me_obs.iter().map(|o| o.level as f64).sum::<f64>() / me_obs.len() as f64;
            self.recorder.record(Channel::Power, cycle, power_w);
            self.recorder.record(Channel::VfLevel, cycle, mean_level);
            self.recorder.record(
                Channel::QueueDepth,
                cycle,
                (self.rx_fifo.len() + self.tx_queue.len()) as f64,
            );
            self.recorder.record(
                Channel::Drops,
                cycle,
                (self.window_rx_drops + self.window_tx_drops) as f64,
            );
            self.recorder
                .record(Channel::OfferedBytes, cycle, self.window_bits as f64 / 8.0);
            self.recorder
                .record(Channel::ServedBytes, cycle, served_bits as f64 / 8.0);
            let mean_wait_us = if self.window_wait_n == 0 {
                0.0
            } else {
                self.window_wait_us / self.window_wait_n as f64
            };
            self.recorder
                .record(Channel::QueueWaitUs, cycle, mean_wait_us);
            self.window_wait_us = 0.0;
            self.window_wait_n = 0;
        }

        let observation = PolicyObservation {
            window: self.windows - 1,
            window_us: window_dur.as_us(),
            aggregate_mbps: self.window_bits as f64 / window_dur.as_us(),
            mes: &me_obs,
            rx_fifo: QueueObservation {
                occupancy: self.rx_fifo.len(),
                capacity: self.config.rx_fifo_cap,
                dropped: self.window_rx_drops,
            },
            tx_queue: QueueObservation {
                occupancy: self.tx_queue.len(),
                capacity: self.config.tx_queue_cap,
                dropped: self.window_tx_drops,
            },
        };
        let response = self.policy.on_window(&observation);
        assert_eq!(
            response.decisions.len(),
            self.mes.len(),
            "policy answered {} decisions for {} microengines",
            response.decisions.len(),
            self.mes.len()
        );

        // Apply the decisions: one ladder step per ME per window, clamped
        // at the bounds; apply_vf charges the switch penalty.
        let top = self.config.ladder.top_index();
        for (m, decision) in response.decisions.into_iter().enumerate() {
            let current = self.mes[m].level_idx;
            let target = match decision {
                ScalingDecision::Up => (current + 1).min(top),
                ScalingDecision::Down => current.saturating_sub(1),
                ScalingDecision::Hold => current,
            };
            if target != current {
                self.apply_vf(m, target, now);
            }
        }

        for m in 0..self.mes.len() {
            self.mes[m].window_acc.reset();
        }
        self.window_bits = 0;
        self.window_rx_drops = 0;
        self.window_tx_drops = 0;
        self.queue.schedule(now + window_dur, Ev::Window);
    }

    /// Applies a VF change to one ME: switch level, start the 10 µs stall.
    fn apply_vf(&mut self, m: usize, new_level: usize, now: SimTime) {
        let me = &mut self.mes[m];
        if me.level_idx == new_level {
            return;
        }
        me.account(now, &self.config.ladder, &self.config.power);
        me.level_idx = new_level;
        me.switches += 1;
        me.stalled_until = now + SWITCH_PENALTY;
        if me.parked {
            me.mode = MeMode::Stalled;
            me.step_token += 1;
            let token = me.step_token;
            let until = me.stalled_until;
            self.queue.schedule(until, Ev::MeStep { me: m, token });
        }
        // If the ME is mid-compute, its continuation MeStep will observe
        // `stalled_until` and serve the stall before executing further.
    }

    /// Marks threads waiting for packets as ready and wakes parked MEs of
    /// the given role.
    fn wake_role(&mut self, role: MeRole, now: SimTime) {
        for m in 0..self.mes.len() {
            if self.mes[m].role != role {
                continue;
            }
            let mut woke = false;
            for th in &mut self.mes[m].threads {
                if th.state == ThreadState::WaitingPacket {
                    th.state = ThreadState::Ready;
                    woke = true;
                }
            }
            if woke && self.mes[m].parked {
                self.run_me(m, now);
            }
        }
    }

    // ------------------------------------------------------------------
    // Microengine execution
    // ------------------------------------------------------------------

    /// Runs microengine `m` forward from `now` until it parks or schedules
    /// a timed continuation.
    fn run_me(&mut self, m: usize, now: SimTime) {
        self.mes[m].parked = false;
        self.mes[m].step_token += 1;

        // Serve a pending VF-switch stall first.
        if self.mes[m].stalled_until > now {
            let until = self.mes[m].stalled_until;
            self.set_mode(m, now, MeMode::Stalled);
            self.mes[m].parked = true;
            let token = self.mes[m].step_token;
            self.queue.schedule(until, Ev::MeStep { me: m, token });
            return;
        }

        loop {
            let Some(ti) = self.pick_ready_thread(m) else {
                // Nothing runnable: park. Memory-blocked-only = idle;
                // anything waiting on packets or the bus busy-polls.
                let threads = &self.mes[m].threads;
                let polling = threads.iter().any(|t| {
                    matches!(
                        t.state,
                        ThreadState::WaitingPacket | ThreadState::BlockedBus
                    )
                });
                let mode = if polling {
                    MeMode::Polling
                } else {
                    MeMode::Idle
                };
                self.set_mode(m, now, mode);
                self.mes[m].parked = true;
                return;
            };

            if self.step_thread(m, ti, now) {
                return; // a timed continuation was scheduled
            }
        }
    }

    /// Round-robin selection of the next ready thread.
    fn pick_ready_thread(&mut self, m: usize) -> Option<usize> {
        let n = self.mes[m].threads.len();
        let start = self.mes[m].next_thread;
        for k in 0..n {
            let ti = (start + k) % n;
            if self.mes[m].threads[ti].state == ThreadState::Ready {
                self.mes[m].next_thread = (ti + 1) % n;
                return Some(ti);
            }
        }
        None
    }

    /// Executes instantaneous work for thread `ti` and either schedules a
    /// timed continuation (returns `true`) or blocks the thread (returns
    /// `false`, caller picks the next thread).
    fn step_thread(&mut self, m: usize, ti: usize, now: SimTime) -> bool {
        // Fetch / deliver at program boundaries.
        if self.mes[m].threads[ti].needs_fetch() {
            if let Some(done) = self.mes[m].threads[ti].packet.take() {
                self.deliver(m, done, now);
                self.mes[m].packets_done += 1;
            }
            let role = self.mes[m].role;
            let popped = match role {
                MeRole::Rx => self.rx_fifo.pop_front(),
                MeRole::Tx => self.tx_queue.pop_front(),
            };
            match popped {
                Some(pkt) => {
                    let program = match role {
                        MeRole::Rx => self.config.benchmark.rx_program(pkt.size_bytes),
                        MeRole::Tx => self.config.benchmark.tx_program(pkt.size_bytes),
                    };
                    let th = &mut self.mes[m].threads[ti];
                    th.program = program;
                    th.pc = 0;
                    th.packet = Some(pkt);
                }
                None => {
                    self.mes[m].threads[ti].state = ThreadState::WaitingPacket;
                    return false;
                }
            }
        }

        let seg = self.mes[m].threads[ti].program[self.mes[m].threads[ti].pc];
        self.mes[m].threads[ti].pc += 1;
        match seg {
            Segment::Compute(n) => {
                let freq = self.mes[m].level(&self.config.ladder).frequency();
                let dt = freq.cycles_to_time(u64::from(n));
                self.set_mode(m, now, MeMode::Busy);
                let token = self.mes[m].step_token;
                self.queue.schedule(now + dt, Ev::MeStep { me: m, token });
                if self.config.trace.emit_pipeline {
                    let annots = self.fifo_annotations(now);
                    self.trace.pipeline(m, annots);
                }
                true
            }
            Segment::Sram => {
                let done = self.sram.issue(now);
                self.block_on(m, ti, ThreadState::BlockedMem, done);
                false
            }
            Segment::Sdram => {
                let done = self.sdram.issue(now);
                self.block_on(m, ti, ThreadState::BlockedMem, done);
                false
            }
            Segment::BusTx(bits) => {
                let done = self.bus.issue(now, bits);
                self.block_on(m, ti, ThreadState::BlockedBus, done);
                false
            }
        }
    }

    fn block_on(&mut self, m: usize, ti: usize, state: ThreadState, wake: SimTime) {
        self.mes[m].threads[ti].state = state;
        self.queue.schedule(wake, Ev::Done { me: m, thread: ti });
    }

    /// Hands a finished packet to the next stage.
    fn deliver(&mut self, m: usize, pkt: Packet, now: SimTime) {
        match self.mes[m].role {
            MeRole::Rx => {
                if self.tx_queue.len() < self.config.tx_queue_cap {
                    self.tx_queue.push_back(pkt);
                    self.wake_role(MeRole::Tx, now);
                } else {
                    self.dropped_tx_packets += 1;
                    self.window_tx_drops += 1;
                }
            }
            MeRole::Tx => {
                self.forwarded_packets += 1;
                self.forwarded_bits += pkt.size_bits();
                if self.rec_enabled {
                    // The packet kept its source arrival time through
                    // both queues, so this is its full chip sojourn.
                    self.window_wait_us += now.saturating_sub(pkt.arrival).as_us();
                    self.window_wait_n += 1;
                }
                let annots = self.forward_annotations(now);
                self.trace.forward(annots);
            }
        }
    }

    fn set_mode(&mut self, m: usize, now: SimTime, mode: MeMode) {
        self.mes[m].set_mode(now, mode, &self.config.ladder, &self.config.power);
    }

    // ------------------------------------------------------------------
    // Annotations & reporting
    // ------------------------------------------------------------------

    /// Chip energy consumed up to `now`, µJ — exact at event boundaries.
    fn total_energy_uj(&self, now: SimTime) -> f64 {
        let me: f64 = self
            .mes
            .iter()
            .map(|m| {
                m.energy_uj + m.pending_energy_uj(now, &self.config.ladder, &self.config.power)
            })
            .sum();
        me + self.sram.energy_uj()
            + self.sdram.energy_uj()
            + EnergyMeter::static_uj(self.config.power.static_w, now)
            + self.meter.monitor_uj
    }

    fn forward_annotations(&self, now: SimTime) -> Annotations {
        Annotations {
            cycle: self.config.base_freq().time_to_cycles(now),
            time: now.as_us(),
            energy: self.total_energy_uj(now),
            total_pkt: self.forwarded_packets,
            total_bit: self.forwarded_bits,
            extra: Vec::new(),
        }
    }

    fn fifo_annotations(&self, now: SimTime) -> Annotations {
        Annotations {
            cycle: self.config.base_freq().time_to_cycles(now),
            time: now.as_us(),
            energy: self.total_energy_uj(now),
            total_pkt: self.arrived_packets,
            total_bit: self.arrived_bits,
            extra: Vec::new(),
        }
    }

    /// Builds the cumulative report as of `at` (the run horizon for a
    /// whole run, an intermediate boundary for segment snapshots; every
    /// accounting interval must already be closed at `at`).
    fn build_report(&self, at: SimTime) -> SimReport {
        let mes: Vec<MeReport> = self
            .mes
            .iter()
            .map(|m| MeReport {
                role: m.role,
                acc: m.acc,
                energy_uj: m.energy_uj,
                switches: m.switches,
                final_level: m.level_idx,
                packets_done: m.packets_done,
                level_time: m.level_acc.clone(),
            })
            .collect();
        SimReport {
            policy: self.policy.kind(),
            duration: at,
            arrived_packets: self.arrived_packets,
            arrived_bits: self.arrived_bits,
            dropped_packets: self.dropped_packets,
            dropped_tx_packets: self.dropped_tx_packets,
            forwarded_packets: self.forwarded_packets,
            forwarded_bits: self.forwarded_bits,
            me_energy_uj: self.mes.iter().map(|m| m.energy_uj).sum(),
            sram_energy_uj: self.sram.energy_uj(),
            sdram_energy_uj: self.sdram.energy_uj(),
            static_energy_uj: EnergyMeter::static_uj(self.config.power.static_w, at),
            monitor_energy_uj: self.meter.monitor_uj,
            sram_accesses: self.sram.accesses(),
            sdram_accesses: self.sdram.accesses(),
            total_switches: self.mes.iter().map(|m| m.switches).sum(),
            windows: self.windows,
            bus_bits: self.bus.bits_sent(),
            bus_rate_mbps: self.bus.rate_mbps(),
            kernel: self.queue.counters(),
            window_idle: self.window_idle.clone(),
            mes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TraceConfig;
    use crate::workload::Benchmark;
    use dvs::{EdvsConfig, PolicyKind, PolicyResponse, PolicySpec, TdvsConfig};
    use traffic::TrafficLevel;

    fn base_config() -> NpuConfig {
        NpuConfig::builder()
            .benchmark(Benchmark::Ipfwdr)
            .traffic(TrafficLevel::Medium)
            .seed(7)
            .build()
    }

    #[test]
    fn smoke_run_forwards_packets() {
        let mut sim = Simulator::new(base_config());
        let r = sim.run_cycles(500_000);
        assert!(r.arrived_packets > 50, "arrived {}", r.arrived_packets);
        assert!(r.forwarded_packets > 0, "forwarded nothing");
        assert!(r.forwarded_bits > 0);
        assert!(r.mean_power_w() > 0.3, "power {}", r.mean_power_w());
        assert!(r.mean_power_w() < 3.0, "power {}", r.mean_power_w());
    }

    #[test]
    fn packet_conservation() {
        let mut sim = Simulator::new(base_config());
        let r = sim.run_cycles(500_000);
        // arrived = forwarded + dropped + still in flight (bounded).
        let in_flight_max =
            (r.arrived_packets - r.forwarded_packets - r.dropped_packets - r.dropped_tx_packets)
                as usize;
        let bound = 512 + 1024 + 6 * 4; // fifos + one per thread
        assert!(
            in_flight_max <= bound,
            "{in_flight_max} packets unaccounted for"
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let run = || {
            let mut sim = Simulator::new(base_config());
            let r = sim.run_cycles(300_000);
            (
                r.arrived_packets,
                r.forwarded_packets,
                r.total_energy_uj().to_bits(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn forward_events_have_monotone_annotations() {
        let mut sim = Simulator::new(base_config());
        let _ = sim.run_cycles(400_000);
        let trace = sim.trace();
        let fwd: Vec<&loc::TraceRecord> = trace.iter().filter(|r| r.event == "forward").collect();
        assert!(fwd.len() > 10, "only {} forward events", fwd.len());
        for w in fwd.windows(2) {
            assert!(w[0].annots.time <= w[1].annots.time);
            assert!(w[0].annots.energy <= w[1].annots.energy);
            assert!(w[0].annots.total_pkt < w[1].annots.total_pkt);
            assert!(w[0].annots.total_bit < w[1].annots.total_bit);
        }
    }

    #[test]
    fn tdvs_scales_down_under_light_traffic() {
        let config = NpuConfig::builder()
            .benchmark(Benchmark::Ipfwdr)
            .traffic(TrafficLevel::Low)
            .policy(PolicySpec::Tdvs(TdvsConfig {
                top_threshold_mbps: 1400.0,
                window_cycles: 40_000,
            }))
            .seed(3)
            .build();
        let mut sim = Simulator::new(config);
        let r = sim.run_cycles(2_000_000);
        assert!(r.total_switches > 0, "TDVS never switched");
        assert!(r.windows > 10);
        // All MEs share the global level under TDVS.
        let levels: Vec<usize> = r.mes.iter().map(|m| m.final_level).collect();
        assert!(levels.windows(2).all(|w| w[0] == w[1]), "levels {levels:?}");
    }

    #[test]
    fn tdvs_saves_power_vs_no_dvs() {
        let run = |policy: PolicySpec| {
            let config = NpuConfig::builder()
                .benchmark(Benchmark::Ipfwdr)
                .traffic(TrafficLevel::Low)
                .policy(policy)
                .seed(11)
                .build();
            Simulator::new(config).run_cycles(2_000_000).mean_power_w()
        };
        let baseline = run(PolicySpec::NoDvs);
        let tdvs = run(PolicySpec::Tdvs(TdvsConfig {
            top_threshold_mbps: 1400.0,
            window_cycles: 40_000,
        }));
        assert!(
            tdvs < baseline * 0.95,
            "TDVS {tdvs:.3} W vs noDVS {baseline:.3} W"
        );
    }

    #[test]
    fn edvs_scales_mes_independently() {
        let config = NpuConfig::builder()
            .benchmark(Benchmark::Ipfwdr)
            .traffic(TrafficLevel::High)
            .policy(PolicySpec::Edvs(EdvsConfig::default()))
            .seed(5)
            .build();
        let mut sim = Simulator::new(config);
        let r = sim.run_cycles(2_000_000);
        assert!(r.windows > 10);
        // The rx MEs see memory idle; tx MEs busy-poll the bus. Their
        // final levels are free to differ (per-ME policy).
        let rx_switches: u64 = r
            .mes
            .iter()
            .filter(|m| m.role == MeRole::Rx)
            .map(|m| m.switches)
            .sum();
        assert!(rx_switches > 0, "no rx ME ever switched under EDVS");
    }

    #[test]
    fn monitor_overhead_below_one_percent() {
        let config = NpuConfig::builder()
            .traffic(TrafficLevel::High)
            .policy(PolicySpec::Tdvs(TdvsConfig::default()))
            .seed(2)
            .build();
        let mut sim = Simulator::new(config);
        let r = sim.run_cycles(1_000_000);
        assert!(r.monitor_energy_uj > 0.0);
        assert!(
            r.monitor_overhead_fraction() < 0.01,
            "monitor overhead {:.4}",
            r.monitor_overhead_fraction()
        );
    }

    #[test]
    fn nat_has_negligible_idle() {
        let config = NpuConfig::builder()
            .benchmark(Benchmark::Nat)
            .traffic(TrafficLevel::High)
            .seed(17)
            .build();
        let mut sim = Simulator::new(config);
        let r = sim.run_cycles(1_000_000);
        assert!(
            r.rx_idle_fraction() < 0.05,
            "nat rx idle {:.3}",
            r.rx_idle_fraction()
        );
    }

    #[test]
    fn tx_mes_rarely_idle() {
        let config = base_config();
        let mut sim = Simulator::new(config);
        let r = sim.run_cycles(1_000_000);
        assert!(
            r.tx_idle_fraction() < 0.08,
            "tx idle {:.3}",
            r.tx_idle_fraction()
        );
    }

    #[test]
    fn fifo_and_pipeline_events_obey_config() {
        let config = NpuConfig::builder()
            .seed(1)
            .trace(TraceConfig {
                emit_fifo: true,
                emit_pipeline: false,
            })
            .build();
        let mut sim = Simulator::new(config);
        let _ = sim.run_cycles(200_000);
        assert!(sim.trace().count_of("fifo") > 0);
        assert_eq!(sim.trace().count_of("m0_pipeline"), 0);
    }

    #[test]
    #[should_panic(expected = "exactly once")]
    fn running_twice_panics() {
        let mut sim = Simulator::new(base_config());
        let _ = sim.run_cycles(1_000);
        let _ = sim.run_cycles(1_000);
    }

    #[test]
    fn segment_snapshots_are_cumulative_and_monotone() {
        let mut sim = Simulator::new(base_config());
        let reports = sim.run_cycle_segments(&[150_000, 300_000, 450_000]);
        assert_eq!(reports.len(), 3);
        for w in reports.windows(2) {
            assert!(w[0].duration < w[1].duration);
            assert!(w[0].arrived_packets <= w[1].arrived_packets);
            assert!(w[0].forwarded_packets <= w[1].forwarded_packets);
            assert!(w[0].total_energy_uj() < w[1].total_energy_uj());
            for (a, b) in w[0].mes.iter().zip(&w[1].mes) {
                assert!(a.acc.total() <= b.acc.total());
                assert!(a.energy_uj <= b.energy_uj);
            }
        }
        // Each snapshot genuinely progressed the simulation.
        assert!(reports[0].forwarded_packets > 0);
        assert!(reports[2].forwarded_packets > reports[0].forwarded_packets);
    }

    #[test]
    fn segmented_run_matches_the_plain_run_event_for_event() {
        // Snapshot boundaries only close accounting intervals early —
        // the event trajectory (packets, drops, switches, windows) must
        // be exactly that of an unsegmented run, and time accounting
        // (integer picoseconds) must agree exactly too.
        let plain = Simulator::new(base_config()).run_cycles(450_000);
        let mut sim = Simulator::new(base_config());
        let last = sim
            .run_cycle_segments(&[100_000, 250_000, 450_000])
            .pop()
            .expect("three snapshots");
        assert_eq!(plain.arrived_packets, last.arrived_packets);
        assert_eq!(plain.forwarded_packets, last.forwarded_packets);
        assert_eq!(plain.forwarded_bits, last.forwarded_bits);
        assert_eq!(plain.dropped_packets, last.dropped_packets);
        assert_eq!(plain.total_switches, last.total_switches);
        assert_eq!(plain.windows, last.windows);
        assert_eq!(plain.duration, last.duration);
        for (a, b) in plain.mes.iter().zip(&last.mes) {
            assert_eq!(a.acc, b.acc, "per-mode time diverged");
            assert_eq!(a.switches, b.switches);
            assert_eq!(a.final_level, b.final_level);
        }
        // Energy is a float fold split at the boundaries: equal to
        // rounding, not necessarily to the bit.
        assert!((plain.total_energy_uj() - last.total_energy_uj()).abs() < 1e-6);
    }

    #[test]
    fn segmented_runs_are_deterministic() {
        let run = || {
            let mut sim = Simulator::new(base_config());
            let reports = sim.run_cycle_segments(&[150_000, 450_000]);
            reports
                .iter()
                .map(|r| (r.forwarded_packets, r.total_energy_uj().to_bits()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn segment_boundaries_must_increase() {
        let mut sim = Simulator::new(base_config());
        let _ = sim.run_cycle_segments(&[100_000, 100_000]);
    }

    #[test]
    fn replaying_a_recorded_trace_reproduces_the_live_run() {
        use desim::SimTime;
        use traffic::RecordedTrace;

        let config = base_config();
        let horizon = config.base_freq().cycles_to_time(300_000);
        // Record the exact packets the live run would see...
        let trace = RecordedTrace::record(
            config.traffic.model().unwrap().stream(config.seed),
            horizon + SimTime::from_us(1),
        );

        let live = Simulator::new(config.clone()).run_cycles(300_000);
        let replay = Simulator::new(config)
            .with_replay(trace)
            .run_cycles(300_000);

        assert_eq!(live.arrived_packets, replay.arrived_packets);
        assert_eq!(live.forwarded_packets, replay.forwarded_packets);
        assert_eq!(live.forwarded_bits, replay.forwarded_bits);
        assert!((live.mean_power_w() - replay.mean_power_w()).abs() < 1e-12);
    }

    #[test]
    fn replay_of_empty_trace_is_an_idle_chip() {
        use traffic::RecordedTrace;
        let report = Simulator::new(base_config())
            .with_replay(RecordedTrace::default())
            .run_cycles(100_000);
        assert_eq!(report.arrived_packets, 0);
        assert_eq!(report.forwarded_packets, 0);
        // The MEs poll the whole time: full active power, no idle.
        assert_eq!(report.rx_idle_fraction(), 0.0);
        assert!(report.mean_power_w() > 1.0);
    }

    /// A policy defined entirely outside the `dvs` crate: the simulator
    /// must drive it through the trait with no registry involvement.
    #[derive(Debug)]
    struct AlwaysDown {
        window_cycles: u64,
    }

    impl DvsPolicy for AlwaysDown {
        fn kind(&self) -> PolicyKind {
            PolicyKind::Custom
        }
        fn window_cycles(&self) -> Option<u64> {
            Some(self.window_cycles)
        }
        fn on_window(&mut self, obs: &PolicyObservation<'_>) -> PolicyResponse {
            PolicyResponse::uniform(ScalingDecision::Down, obs.mes.len())
        }
    }

    #[test]
    fn custom_policy_drives_the_simulator() {
        let sim = Simulator::new(base_config());
        let mut sim = sim.with_policy(Box::new(AlwaysDown {
            window_cycles: 20_000,
        }));
        let r = sim.run_cycles(1_000_000);
        assert_eq!(r.policy, PolicyKind::Custom);
        // Four windows walk every ME to the bottom; the platform clamps
        // the rest of the Down decisions.
        for me in &r.mes {
            assert_eq!(me.final_level, 0, "{:?} not at bottom", me.role);
            assert_eq!(me.switches, 4);
        }
        // The window cadence follows the injected policy, not the config.
        let expected = 1_000_000 / 20_000;
        assert!(
            (r.windows as i64 - expected as i64).abs() <= 1,
            "windows {}",
            r.windows
        );
    }

    #[test]
    fn queue_aware_policy_runs_end_to_end() {
        let config = NpuConfig::builder()
            .benchmark(Benchmark::Ipfwdr)
            .traffic(TrafficLevel::Low)
            .policy(PolicySpec::parse("queue").expect("registered"))
            .seed(13)
            .build();
        let r = Simulator::new(config).run_cycles(2_000_000);
        assert_eq!(r.policy, PolicyKind::QueueAware);
        // Light traffic leaves the FIFO near-empty: the chip scales down
        // and saves power vs the pinned baseline on the same workload.
        assert!(r.total_switches > 0, "QDVS never switched");
        let baseline_config = NpuConfig::builder()
            .benchmark(Benchmark::Ipfwdr)
            .traffic(TrafficLevel::Low)
            .seed(13)
            .build();
        let base = Simulator::new(baseline_config).run_cycles(2_000_000);
        assert!(r.mean_power_w() < base.mean_power_w());
    }

    #[test]
    fn recorder_samples_every_channel_without_perturbing_the_run() {
        use obs::MemRecorder;

        let baseline = Simulator::new(base_config()).run_cycles(500_000);
        let mut sim = Simulator::new(base_config()).with_recorder(Box::new(MemRecorder::new()));
        let recorded = sim.run_cycles(500_000);
        // Attaching a recorder is pure observation: the report is the
        // bit-identical report of the unattached run.
        assert_eq!(baseline, recorded);

        let rec = sim.take_recording();
        let windows = recorded.windows as usize;
        assert_eq!(rec.len(), windows * Channel::ALL.len());
        for channel in Channel::ALL {
            assert_eq!(rec.values(channel).len(), windows, "{channel}");
        }
        // Epoch powers average out to the run's mean power, and the
        // served bytes total the forwarded bits.
        let powers = rec.values(Channel::Power);
        let mean = powers.iter().sum::<f64>() / powers.len() as f64;
        assert!(
            (mean - recorded.mean_power_w()).abs() < 0.05,
            "epoch power mean {mean:.3} vs run {:.3}",
            recorded.mean_power_w()
        );
        let served: f64 = rec.values(Channel::ServedBytes).iter().sum();
        assert!(served * 8.0 <= recorded.forwarded_bits as f64);
        // Sample timestamps advance one window at a time.
        let cycles: Vec<u64> = rec.channel(Channel::Power).map(|s| s.cycle).collect();
        assert!(cycles.windows(2).all(|w| w[0] < w[1]));
        // A second take is empty: the recording was moved out.
        assert!(sim.take_recording().is_empty());
    }

    #[test]
    fn kernel_counters_tally_the_event_loop() {
        let mut sim = Simulator::new(base_config());
        let r = sim.run_cycles(300_000);
        assert!(r.kernel.events_processed > 1_000, "{:?}", r.kernel);
        assert!(r.kernel.events_scheduled >= r.kernel.events_processed);
        assert!(r.kernel.peak_heap_len >= 2);
        // Determinism: the tallies are part of the report and must
        // reproduce exactly.
        let again = Simulator::new(base_config()).run_cycles(300_000);
        assert_eq!(r.kernel, again.kernel);
    }

    #[test]
    fn energy_components_are_all_positive() {
        let mut sim = Simulator::new(base_config());
        let r = sim.run_cycles(500_000);
        assert!(r.me_energy_uj > 0.0);
        assert!(r.sram_energy_uj > 0.0);
        assert!(r.sdram_energy_uj > 0.0);
        assert!(r.static_energy_uj > 0.0);
        assert_eq!(r.monitor_energy_uj, 0.0, "no monitor without TDVS");
        assert!(r.total_energy_uj() > 0.0);
    }
}
