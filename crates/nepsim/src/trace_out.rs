//! Trace emission in the NePSim format (paper Figs. 3 and 4).

use loc::{Annotations, Trace, TraceRecord};

use crate::config::TraceConfig;

/// Collects trace events during simulation.
#[derive(Debug)]
pub(crate) struct TraceCollector {
    config: TraceConfig,
    trace: Trace,
}

impl TraceCollector {
    pub(crate) fn new(config: TraceConfig) -> Self {
        TraceCollector {
            config,
            trace: Trace::new(),
        }
    }

    /// Emits a `forward` event (an IP packet was forwarded). Always on.
    pub(crate) fn forward(&mut self, annots: Annotations) {
        self.trace.push(TraceRecord::new("forward", annots));
    }

    /// Emits a `fifo` event (a packet entered the processing queue).
    pub(crate) fn fifo(&mut self, annots: Annotations) {
        if self.config.emit_fifo {
            self.trace.push(TraceRecord::new("fifo", annots));
        }
    }

    /// Emits an `mN_pipeline` event (an execution bundle entered ME `n`'s
    /// pipeline).
    pub(crate) fn pipeline(&mut self, me: usize, annots: Annotations) {
        if self.config.emit_pipeline {
            self.trace
                .push(TraceRecord::new(format!("m{me}_pipeline"), annots));
        }
    }

    pub(crate) fn into_trace(self) -> Trace {
        self.trace
    }

    pub(crate) fn trace(&self) -> &Trace {
        &self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_always_emitted() {
        let mut c = TraceCollector::new(TraceConfig::default());
        c.forward(Annotations::default());
        assert_eq!(c.trace().count_of("forward"), 1);
    }

    #[test]
    fn optional_events_respect_config() {
        let mut quiet = TraceCollector::new(TraceConfig {
            emit_fifo: false,
            emit_pipeline: false,
        });
        quiet.fifo(Annotations::default());
        quiet.pipeline(2, Annotations::default());
        assert_eq!(quiet.trace().len(), 0);

        let mut loud = TraceCollector::new(TraceConfig {
            emit_fifo: true,
            emit_pipeline: true,
        });
        loud.fifo(Annotations::default());
        loud.pipeline(2, Annotations::default());
        assert_eq!(loud.trace().count_of("fifo"), 1);
        assert_eq!(loud.trace().count_of("m2_pipeline"), 1);
    }

    #[test]
    fn into_trace_hands_over_records() {
        let mut c = TraceCollector::new(TraceConfig::default());
        c.forward(Annotations::default());
        let t = c.into_trace();
        assert_eq!(t.len(), 1);
    }
}
