//! End-of-run simulation reports.

use desim::SimTime;
use dvs::PolicyKind;
use obs::KernelCounters;
use serde::{Deserialize, Serialize};

use crate::engine::{MeMode, MeRole, ModeAcc};

/// One per-ME idle-fraction sample taken at a monitor-window boundary —
/// the measurements behind the paper's §4.2 bimodality observation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WindowIdleSample {
    /// Window ordinal (0-based).
    pub window: u64,
    /// Microengine index.
    pub me: usize,
    /// Microengine role.
    pub role: MeRole,
    /// Fraction of the window the ME spent with all threads blocked on
    /// memory.
    pub idle: f64,
}

/// Per-microengine summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeReport {
    /// Role of this ME.
    pub role: MeRole,
    /// Lifetime per-mode wall time.
    pub acc: ModeAcc,
    /// Energy consumed by this ME, µJ.
    pub energy_uj: f64,
    /// VF switches applied to this ME.
    pub switches: u64,
    /// Final VF level index.
    pub final_level: usize,
    /// Packets processed (rx) or transmitted (tx).
    pub packets_done: u64,
    /// Wall time spent at each VF level (index = ladder index, lowest
    /// frequency first).
    pub level_time: Vec<SimTime>,
}

impl MeReport {
    /// Fraction of the ME's accounted time spent at ladder level `index`.
    #[must_use]
    pub fn level_fraction(&self, index: usize) -> f64 {
        let total: SimTime = self.level_time.iter().copied().sum();
        if total == SimTime::ZERO || index >= self.level_time.len() {
            0.0
        } else {
            self.level_time[index].as_secs() / total.as_secs()
        }
    }

    /// Fraction of the ME's time spent idle (all threads memory-blocked)
    /// — the EDVS control signal.
    #[must_use]
    pub fn idle_fraction(&self) -> f64 {
        self.acc.fraction(MeMode::Idle)
    }

    /// Fraction spent executing or polling (active power draw).
    #[must_use]
    pub fn active_fraction(&self) -> f64 {
        self.acc.fraction(MeMode::Busy) + self.acc.fraction(MeMode::Polling)
    }
}

/// The summary of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Which DVS policy ran.
    pub policy: PolicyKind,
    /// Simulated wall time.
    pub duration: SimTime,
    /// Packets that arrived at the device ports.
    pub arrived_packets: u64,
    /// Bits that arrived at the device ports.
    pub arrived_bits: u64,
    /// Packets dropped at the receive FIFO (the trace's loss counter).
    pub dropped_packets: u64,
    /// Packets dropped at the processed-packet queue.
    pub dropped_tx_packets: u64,
    /// Packets fully forwarded (transmitted).
    pub forwarded_packets: u64,
    /// Bits forwarded.
    pub forwarded_bits: u64,
    /// Per-ME summaries.
    pub mes: Vec<MeReport>,
    /// ME energy (active + idle), µJ.
    pub me_energy_uj: f64,
    /// SRAM energy, µJ.
    pub sram_energy_uj: f64,
    /// SDRAM energy, µJ.
    pub sdram_energy_uj: f64,
    /// Static/background energy, µJ.
    pub static_energy_uj: f64,
    /// DVS monitor overhead energy, µJ.
    pub monitor_energy_uj: f64,
    /// SRAM accesses issued.
    pub sram_accesses: u64,
    /// SDRAM accesses issued.
    pub sdram_accesses: u64,
    /// Total VF switches across all MEs.
    pub total_switches: u64,
    /// Number of monitor windows elapsed.
    pub windows: u64,
    /// Bits pushed through the IX transmit bus.
    pub bus_bits: u64,
    /// The IX bus rate, Mbps.
    pub bus_rate_mbps: f64,
    /// Event-kernel tallies (events, heap ops) for this run. Pure
    /// functions of the event sequence — deterministic like every
    /// other field; wall-clock rates are measured by callers.
    pub kernel: KernelCounters,
    /// Per-window, per-ME idle fractions (§4.2 bimodality data).
    pub window_idle: Vec<WindowIdleSample>,
}

impl SimReport {
    /// Total chip energy, µJ.
    #[must_use]
    pub fn total_energy_uj(&self) -> f64 {
        self.me_energy_uj
            + self.sram_energy_uj
            + self.sdram_energy_uj
            + self.static_energy_uj
            + self.monitor_energy_uj
    }

    /// Mean chip power over the run, watts.
    #[must_use]
    pub fn mean_power_w(&self) -> f64 {
        let us = self.duration.as_us();
        if us <= 0.0 {
            0.0
        } else {
            self.total_energy_uj() / us
        }
    }

    /// Mean forwarding throughput, Mbps.
    #[must_use]
    pub fn throughput_mbps(&self) -> f64 {
        let us = self.duration.as_us();
        if us <= 0.0 {
            0.0
        } else {
            self.forwarded_bits as f64 / us
        }
    }

    /// Offered load, Mbps.
    #[must_use]
    pub fn offered_mbps(&self) -> f64 {
        let us = self.duration.as_us();
        if us <= 0.0 {
            0.0
        } else {
            self.arrived_bits as f64 / us
        }
    }

    /// Packet-loss ratio at the receive FIFO.
    #[must_use]
    pub fn loss_ratio(&self) -> f64 {
        if self.arrived_packets == 0 {
            0.0
        } else {
            (self.dropped_packets + self.dropped_tx_packets) as f64 / self.arrived_packets as f64
        }
    }

    /// Mean idle fraction of the receive MEs.
    #[must_use]
    pub fn rx_idle_fraction(&self) -> f64 {
        mean_idle(self.mes.iter().filter(|m| m.role == MeRole::Rx))
    }

    /// Mean idle fraction of the transmit MEs.
    #[must_use]
    pub fn tx_idle_fraction(&self) -> f64 {
        mean_idle(self.mes.iter().filter(|m| m.role == MeRole::Tx))
    }

    /// Mean utilisation of the IX transmit bus over the run.
    #[must_use]
    pub fn bus_utilization(&self) -> f64 {
        let capacity_bits = self.bus_rate_mbps * self.duration.as_us();
        if capacity_bits <= 0.0 {
            0.0
        } else {
            self.bus_bits as f64 / capacity_bits
        }
    }

    /// The fraction of total chip energy attributable to the DVS monitor
    /// hardware — the paper reports this is below 1 % (§4.1).
    #[must_use]
    pub fn monitor_overhead_fraction(&self) -> f64 {
        let total = self.total_energy_uj();
        if total <= 0.0 {
            0.0
        } else {
            self.monitor_energy_uj / total
        }
    }
}

fn mean_idle<'a, I: Iterator<Item = &'a MeReport>>(mes: I) -> f64 {
    let v: Vec<f64> = mes.map(MeReport::idle_fraction).collect();
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimReport {
        let mut rx_acc = ModeAcc::default();
        rx_acc.add(MeMode::Busy, SimTime::from_us(60));
        rx_acc.add(MeMode::Idle, SimTime::from_us(40));
        let mut tx_acc = ModeAcc::default();
        tx_acc.add(MeMode::Busy, SimTime::from_us(95));
        tx_acc.add(MeMode::Idle, SimTime::from_us(5));
        SimReport {
            policy: PolicyKind::NoDvs,
            duration: SimTime::from_us(100),
            arrived_packets: 100,
            arrived_bits: 100_000,
            dropped_packets: 5,
            dropped_tx_packets: 0,
            forwarded_packets: 95,
            forwarded_bits: 95_000,
            mes: vec![
                MeReport {
                    role: MeRole::Rx,
                    acc: rx_acc,
                    energy_uj: 10.0,
                    switches: 0,
                    final_level: 4,
                    packets_done: 95,
                    level_time: vec![SimTime::ZERO; 5],
                },
                MeReport {
                    role: MeRole::Tx,
                    acc: tx_acc,
                    energy_uj: 12.0,
                    switches: 0,
                    final_level: 4,
                    packets_done: 95,
                    level_time: vec![SimTime::ZERO; 5],
                },
            ],
            me_energy_uj: 22.0,
            sram_energy_uj: 1.0,
            sdram_energy_uj: 2.0,
            static_energy_uj: 30.0,
            monitor_energy_uj: 0.5,
            sram_accesses: 300,
            sdram_accesses: 400,
            total_switches: 0,
            windows: 0,
            bus_bits: 95_000,
            bus_rate_mbps: 1300.0,
            kernel: KernelCounters::default(),
            window_idle: Vec::new(),
        }
    }

    #[test]
    fn derived_metrics() {
        let r = report();
        assert!((r.total_energy_uj() - 55.5).abs() < 1e-12);
        // 55.5 uJ over 100 us = 0.555 W.
        assert!((r.mean_power_w() - 0.555).abs() < 1e-12);
        // 95,000 bits over 100 us = 950 Mbps.
        assert!((r.throughput_mbps() - 950.0).abs() < 1e-9);
        assert!((r.offered_mbps() - 1000.0).abs() < 1e-9);
        assert!((r.loss_ratio() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn idle_fractions_by_role() {
        let r = report();
        assert!((r.rx_idle_fraction() - 0.4).abs() < 1e-12);
        assert!((r.tx_idle_fraction() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn monitor_fraction() {
        let r = report();
        assert!((r.monitor_overhead_fraction() - 0.5 / 55.5).abs() < 1e-12);
    }

    #[test]
    fn zero_duration_is_safe() {
        let mut r = report();
        r.duration = SimTime::ZERO;
        assert_eq!(r.mean_power_w(), 0.0);
        assert_eq!(r.throughput_mbps(), 0.0);
        assert_eq!(r.offered_mbps(), 0.0);
    }
}
