//! A NePSim-style cycle-level network-processor simulator with power
//! estimation, patterned after the Intel IXP1200 reference design the
//! paper's experiments run on (§2.1, §3).
//!
//! The modelled chip contains:
//!
//! * six multi-threaded **microengines** (MEs) — four receive/process
//!   packets, two transmit (the paper's rx/tx split), four hardware
//!   threads each with zero-cost context switching on memory blocks;
//! * **SRAM** and **SDRAM** controllers with fixed clocks (scaled 1.3× the
//!   IXP1200 per paper §4.1) and queueing delay — an SDRAM access can take
//!   ~100 core cycles under load, the source of ME idle time (§4.2);
//! * a shared **IX bus** transmit path that caps media throughput;
//! * bounded receive/transmit **packet FIFOs** with drop accounting;
//! * an activity-based **power model** (`P ∝ C·V²·α·f`) with per-component
//!   energy metering and the TDVS monitor-adder overhead;
//! * pluggable **DVS policies** from the [`dvs`] crate, applied at monitor
//!   window boundaries with the paper's 10 µs switch penalty;
//! * **trace emission** of `pipeline`, `forward` and `fifo` events with the
//!   `cycle/time/energy/total_pkt/total_bit` annotations of paper Fig. 3/4,
//!   consumable by the [`loc`] checkers and analyzers.
//!
//! # Example
//!
//! ```
//! use nepsim::{Benchmark, NpuConfig, Simulator};
//! use traffic::TrafficLevel;
//!
//! let config = NpuConfig::builder()
//!     .benchmark(Benchmark::Ipfwdr)
//!     .traffic(TrafficLevel::Medium)
//!     .seed(1)
//!     .build();
//! let mut sim = Simulator::new(config);
//! let report = sim.run_cycles(200_000); // short smoke run
//! assert!(report.forwarded_packets > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod engine;
mod memory;
mod power;
mod report;
mod sim;
mod trace_out;
mod workload;

pub use config::{NpuConfig, NpuConfigBuilder, PowerParams, TraceConfig};
pub use dvs::PolicySpec;
pub use engine::{MeMode, MeRole, ModeAcc};
pub use memory::{MemoryController, MemoryParams};
pub use obs::{Channel, MemRecorder, NullRecorder, Recorder, Recording};
pub use power::EnergyMeter;
pub use report::{MeReport, SimReport, WindowIdleSample};
pub use sim::Simulator;
pub use traffic::TrafficSpec;
pub use workload::{Benchmark, Segment};
