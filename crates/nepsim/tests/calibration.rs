//! Calibration tests: the quantitative anchors that tie the behavioural
//! model to the paper's reported operating points (see DESIGN.md §2).
//!
//! These use 2M-cycle runs (a quarter of the paper's) — long enough for
//! the anchors below to be stable at the asserted tolerances.

use dvs::EdvsConfig;
use nepsim::{Benchmark, MeMode, MeRole, NpuConfig, PolicySpec, SimReport, Simulator};
use traffic::TrafficLevel;

const CYCLES: u64 = 2_000_000;

fn run(benchmark: Benchmark, traffic: TrafficLevel, policy: PolicySpec) -> SimReport {
    let config = NpuConfig::builder()
        .benchmark(benchmark)
        .traffic(traffic)
        .policy(policy)
        .seed(42)
        .build();
    Simulator::new(config).run_cycles(CYCLES)
}

/// The noDVS chip dissipates ~1.2–1.5 W under load — the region the
/// paper's distribution plots (0.5–2.25 W analysis period) centre on.
#[test]
fn nodvs_power_in_paper_band() {
    for benchmark in Benchmark::ALL {
        let r = run(benchmark, TrafficLevel::High, PolicySpec::NoDvs);
        let p = r.mean_power_w();
        assert!((1.0..1.6).contains(&p), "{benchmark}: noDVS power {p:.3} W");
    }
}

/// ipfwdr receive MEs at high traffic idle 25–45 % of the time — the
/// paper's upper bimodal mode (§4.2).
#[test]
fn ipfwdr_rx_idle_band_at_high_traffic() {
    let r = run(Benchmark::Ipfwdr, TrafficLevel::High, PolicySpec::NoDvs);
    let idle = r.rx_idle_fraction();
    assert!((0.20..0.50).contains(&idle), "rx idle {idle:.3}");
}

/// ...and at low traffic they poll instead: idle under 5 %.
#[test]
fn ipfwdr_rx_polls_at_low_traffic() {
    let r = run(Benchmark::Ipfwdr, TrafficLevel::Low, PolicySpec::NoDvs);
    assert!(
        r.rx_idle_fraction() < 0.05,
        "rx idle {:.3}",
        r.rx_idle_fraction()
    );
    // Polling keeps the MEs on active power: total active fraction high.
    let rx_active: f64 = r
        .mes
        .iter()
        .filter(|m| m.role == MeRole::Rx)
        .map(|m| m.active_fraction())
        .sum::<f64>()
        / 4.0;
    assert!(rx_active > 0.90, "rx active {rx_active:.3}");
}

/// Transmitting MEs are transmission-constrained but almost never idle
/// (bus waits are busy-polls): idle < 5 % at every traffic level.
#[test]
fn tx_idle_below_five_percent_everywhere() {
    for traffic in TrafficLevel::ALL {
        let r = run(Benchmark::Ipfwdr, traffic, PolicySpec::NoDvs);
        assert!(
            r.tx_idle_fraction() < 0.05,
            "{traffic}: tx idle {:.3}",
            r.tx_idle_fraction()
        );
    }
}

/// The paper's §4.2 window bimodality: ~90 % of rx windows are either
/// under 5 % idle or between 20 % and 45 %.
#[test]
fn rx_window_idle_is_bimodal() {
    let r = run(Benchmark::Ipfwdr, TrafficLevel::High, PolicySpec::NoDvs);
    let rx: Vec<f64> = r
        .window_idle
        .iter()
        .filter(|s| s.role == MeRole::Rx)
        .map(|s| s.idle)
        .collect();
    assert!(rx.len() > 100, "only {} window samples", rx.len());
    let in_modes = rx
        .iter()
        .filter(|&&x| x < 0.05 || (0.20..0.50).contains(&x))
        .count() as f64
        / rx.len() as f64;
    assert!(
        in_modes > 0.75,
        "only {:.0}% of windows in the two modes",
        in_modes * 100.0
    );
    // Both modes are populated.
    let low = rx.iter().filter(|&&x| x < 0.05).count();
    let high = rx.iter().filter(|&&x| (0.20..0.50).contains(&x)).count();
    assert!(low > 0, "no low-idle windows");
    assert!(high > 0, "no high-idle windows");
}

/// The effective SDRAM access time stays in the paper's "as much as 100
/// clock cycles" regime: between the 108-cycle base latency and ~200
/// cycles with queueing.
#[test]
fn sdram_access_time_matches_paper_quote() {
    let config = NpuConfig::builder()
        .benchmark(Benchmark::Ipfwdr)
        .traffic(TrafficLevel::High)
        .seed(42)
        .build();
    let mut sim = Simulator::new(config);
    let _ = sim.run_cycles(CYCLES);
    let mean = sim.sdram_mean_access_time();
    let cycles = desim::Frequency::from_mhz(600).time_to_cycles(mean);
    assert!(
        (100..260).contains(&cycles),
        "mean SDRAM access {cycles} base-clock cycles"
    );
}

/// Benchmark ordering of EDVS opportunity: ipfwdr and url expose idle,
/// md4 a little, nat none (paper §3.1 characterisation and §4.3 results).
#[test]
fn benchmark_idle_ordering() {
    let idle = |b| run(b, TrafficLevel::High, PolicySpec::NoDvs).rx_idle_fraction();
    let ipfwdr = idle(Benchmark::Ipfwdr);
    let url = idle(Benchmark::Url);
    let nat = idle(Benchmark::Nat);
    let md4 = idle(Benchmark::Md4);
    assert!(nat < 0.02, "nat idle {nat:.3}");
    assert!(ipfwdr > 0.15, "ipfwdr idle {ipfwdr:.3}");
    assert!(url > 0.05, "url idle {url:.3}");
    assert!(
        nat < md4 && md4 < ipfwdr,
        "ordering: nat {nat:.3} md4 {md4:.3} ipfwdr {ipfwdr:.3}"
    );
}

/// EDVS on ipfwdr at high traffic: the receive MEs settle at low VF
/// levels and total savings land in the paper's ~20 % region.
#[test]
fn edvs_savings_magnitude() {
    let base = run(Benchmark::Ipfwdr, TrafficLevel::High, PolicySpec::NoDvs);
    let edvs = run(
        Benchmark::Ipfwdr,
        TrafficLevel::High,
        PolicySpec::Edvs(EdvsConfig::default()),
    );
    let saving = 1.0 - edvs.mean_power_w() / base.mean_power_w();
    assert!(
        (0.10..0.35).contains(&saving),
        "EDVS saving {:.1}% outside the expected band",
        saving * 100.0
    );
    for me in edvs.mes.iter().filter(|m| m.role == MeRole::Rx) {
        assert!(
            me.final_level <= 2,
            "an rx ME ended at level {}",
            me.final_level
        );
        // Level occupancy: most of the run is spent at the bottom two
        // levels once EDVS engages.
        let low_share = me.level_fraction(0) + me.level_fraction(1);
        assert!(low_share > 0.5, "rx ME spent only {low_share:.2} at low VF");
    }
    // Tx MEs never leave the top level.
    for me in edvs.mes.iter().filter(|m| m.role == MeRole::Tx) {
        assert!(me.level_fraction(4) > 0.99, "tx ME left the top level");
    }
}

/// Energy accounting closes: the per-ME mode times sum to the run
/// duration, and component energies sum to the total.
#[test]
fn accounting_closure() {
    let r = run(Benchmark::Url, TrafficLevel::Medium, PolicySpec::NoDvs);
    for (k, me) in r.mes.iter().enumerate() {
        let total = me.acc.total();
        let diff = if total > r.duration {
            total - r.duration
        } else {
            r.duration - total
        };
        assert!(
            diff.as_ps() < 1_000_000, // < 1us slack
            "me{k}: accounted {total} vs duration {}",
            r.duration
        );
    }
    let components = r.me_energy_uj
        + r.sram_energy_uj
        + r.sdram_energy_uj
        + r.static_energy_uj
        + r.monitor_energy_uj;
    assert!((components - r.total_energy_uj()).abs() < 1e-9);
    // Mode sanity: nobody is stalled without DVS.
    for me in &r.mes {
        assert_eq!(me.acc.get(MeMode::Stalled), desim::SimTime::ZERO);
    }
}

/// Throughput tracks offered load when the system keeps up (low traffic,
/// any benchmark).
#[test]
fn low_traffic_is_lossless() {
    for benchmark in Benchmark::ALL {
        let r = run(benchmark, TrafficLevel::Low, PolicySpec::NoDvs);
        assert_eq!(r.dropped_packets, 0, "{benchmark} dropped packets");
        let deficit = 1.0 - r.throughput_mbps() / r.offered_mbps();
        assert!(deficit < 0.03, "{benchmark}: deficit {:.3}", deficit);
    }
}
