//! Platform-side conformance for every registered policy: the simulator
//! must charge the 10 µs switch penalty on every applied level change,
//! keep levels on the ladder, and fire monitor windows at the cadence the
//! policy's `window_cycles` metadata declares.

use desim::Frequency;
use dvs::{Params, PolicyRegistry, PolicySpec, SWITCH_PENALTY};
use nepsim::{Benchmark, MeMode, NpuConfig, Simulator};
use traffic::TrafficLevel;

const CYCLES: u64 = 1_500_000;

fn registered_specs() -> Vec<PolicySpec> {
    let registry = PolicyRegistry::builtin();
    registry
        .infos()
        .map(|info| {
            registry
                .build_spec(info.name, Params::default())
                .expect("defaults build")
        })
        .collect()
}

fn run(spec: &PolicySpec, traffic: TrafficLevel) -> nepsim::SimReport {
    let config = NpuConfig::builder()
        .benchmark(Benchmark::Ipfwdr)
        .traffic(traffic)
        .policy(spec.clone())
        .seed(23)
        .build();
    Simulator::new(config).run_cycles(CYCLES)
}

#[test]
fn every_policy_keeps_levels_on_the_ladder() {
    for spec in registered_specs() {
        for traffic in TrafficLevel::ALL {
            let r = run(&spec, traffic);
            let ladder_len = NpuConfig::default().ladder.len();
            for me in &r.mes {
                assert!(
                    me.final_level < ladder_len,
                    "{spec} @ {traffic}: level {} off the ladder",
                    me.final_level
                );
                // Level-residency accounting covers exactly the ladder.
                assert_eq!(me.level_time.len(), ladder_len, "{spec}");
            }
        }
    }
}

#[test]
fn switch_penalties_are_charged_on_every_level_change() {
    let penalty_us = SWITCH_PENALTY.as_us();
    for spec in registered_specs() {
        let r = run(&spec, TrafficLevel::Low);
        for (m, me) in r.mes.iter().enumerate() {
            let stalled_us = me.acc.get(MeMode::Stalled).as_us();
            if me.switches == 0 {
                assert_eq!(stalled_us, 0.0, "{spec}: ME {m} stalled without switching");
                continue;
            }
            // Every switch stalls the ME for 10 µs. The stall may start a
            // few hundred cycles late (a compute segment in flight) and
            // the last one may be cut by the horizon, so require 80 % of
            // the nominal charge for all but the final switch.
            let lower_bound = (me.switches - 1) as f64 * penalty_us * 0.8;
            assert!(
                stalled_us >= lower_bound,
                "{spec}: ME {m} made {} switches but stalled only {stalled_us:.1} µs \
                 (expected ≥ {lower_bound:.1})",
                me.switches
            );
        }
    }
}

#[test]
fn window_cadence_matches_declared_window_cycles() {
    for spec in registered_specs() {
        let r = run(&spec, TrafficLevel::Medium);
        // noDVS declares no window; the platform falls back to its
        // statistics window (the builder default, 40 k cycles).
        let window_cycles = spec.window_cycles().unwrap_or(40_000);
        let expected = CYCLES / window_cycles;
        let got = r.windows;
        assert!(
            (got as i64 - expected as i64).abs() <= 1,
            "{spec}: {got} windows over {CYCLES} cycles, declared cadence {window_cycles}"
        );
        // And the idle samples cover every window × ME cell.
        assert_eq!(
            r.window_idle.len() as u64,
            got * r.mes.len() as u64,
            "{spec}: missing idle samples"
        );
    }
}

#[test]
fn non_default_windows_change_the_cadence_end_to_end() {
    let base = Frequency::from_mhz(600);
    for name in ["tdvs", "queue", "proportional"] {
        let spec = PolicySpec::parse(&format!("{name}:window=20000")).expect("valid");
        let r = run(&spec, TrafficLevel::Medium);
        assert!(
            (r.windows as i64 - (CYCLES / 20_000) as i64).abs() <= 1,
            "{name}: cadence did not follow the spec ({} windows)",
            r.windows
        );
        // Sanity: the declared window corresponds to real simulated time.
        assert_eq!(base.time_to_cycles(r.duration), CYCLES);
    }
}
