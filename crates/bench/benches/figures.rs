//! Criterion benches that time reduced-size versions of each figure's
//! full regeneration pipeline (simulate → trace → analyze). One bench per
//! evaluation figure; the `fig*` binaries produce the actual numbers.

use abdex::compare::{compare_policies, ComparisonConfig};
use abdex::dvs::EdvsConfig;
use abdex::nepsim::Benchmark;
use abdex::traffic::{DiurnalModel, TrafficLevel, TrafficSpec};
use abdex::{sweep_tdvs, Experiment, PolicySpec, TdvsGrid};
use criterion::{criterion_group, criterion_main, Criterion};

/// Reduced run length so `cargo bench` completes quickly; the binaries use
/// the paper's 8M cycles.
const CYCLES: u64 = 100_000;

fn fig02_traffic(c: &mut Criterion) {
    c.bench_function("fig02_day_series", |b| {
        b.iter(|| DiurnalModel::nlanr_like(42).day_series(std::hint::black_box(300.0)));
    });
}

fn fig06_07_tdvs_cell(c: &mut Criterion) {
    c.bench_function("fig06_07_one_tdvs_cell", |b| {
        b.iter(|| {
            let grid = TdvsGrid {
                thresholds_mbps: vec![1000.0],
                windows_cycles: vec![40_000],
            };
            sweep_tdvs(
                Benchmark::Ipfwdr,
                &TrafficLevel::High.into(),
                &grid,
                CYCLES,
                42,
            )
        });
    });
}

fn fig08_09_surface(c: &mut Criterion) {
    c.bench_function("fig08_09_2x2_surface", |b| {
        b.iter(|| {
            let grid = TdvsGrid {
                thresholds_mbps: vec![1000.0, 1400.0],
                windows_cycles: vec![20_000, 80_000],
            };
            let cells = sweep_tdvs(
                Benchmark::Ipfwdr,
                &TrafficLevel::High.into(),
                &grid,
                CYCLES,
                42,
            );
            (
                abdex::sweep::power_surface(&cells),
                abdex::sweep::throughput_surface(&cells),
            )
        });
    });
}

fn fig10_edvs(c: &mut Criterion) {
    c.bench_function("fig10_edvs_experiment", |b| {
        b.iter(|| {
            Experiment {
                benchmark: Benchmark::Ipfwdr,
                traffic: TrafficLevel::High.into(),
                policy: PolicySpec::Edvs(EdvsConfig::default()),
                cycles: CYCLES,
                seed: 42,
            }
            .run()
        });
    });
}

fn fig11_comparison(c: &mut Criterion) {
    c.bench_function("fig11_one_benchmark_row", |b| {
        b.iter(|| {
            let cfg = ComparisonConfig {
                cycles: CYCLES,
                ..ComparisonConfig::default()
            };
            compare_policies(
                &[Benchmark::Ipfwdr],
                &[TrafficSpec::Level(TrafficLevel::High)],
                &cfg,
            )
        });
    });
}

criterion_group!(
    benches,
    fig02_traffic,
    fig06_07_tdvs_cell,
    fig08_09_surface,
    fig10_edvs,
    fig11_comparison
);
criterion_main!(benches);
