//! Criterion benches for the LOC toolchain: parser, checker and
//! distribution-analyzer throughput.

use abdex::formulas::{power_distribution, throughput_distribution};
use abdex::loc::{parse, Analyzer, Annotations, Checker, Trace, TraceRecord};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

fn synthetic_trace(records: usize) -> Trace {
    (0..records)
        .map(|k| {
            let annots = Annotations {
                cycle: k as u64 * 1000,
                time: k as f64 * 2.5,
                energy: k as f64 * 3.2,
                total_pkt: k as u64,
                total_bit: k as u64 * 2722,
                extra: Vec::new(),
            };
            TraceRecord::new("forward", annots)
        })
        .collect()
}

fn bench_parser(c: &mut Criterion) {
    let sources = [
        "cycle(deq[i]) - cycle(enq[i]) <= 50",
        "(energy(forward[i+100]) - energy(forward[i])) / \
         (time(forward[i+100]) - time(forward[i])) dist== (0.5, 2.25, 0.01)",
        "((total_bit(forward[i+100]) - total_bit(forward[i])) / 1e6) / \
         (time(forward[i+100]) - time(forward[i])) dist== (100, 3300, 10)",
    ];
    let mut g = c.benchmark_group("parser");
    for (k, src) in sources.iter().enumerate() {
        g.bench_function(format!("formula_{k}"), |b| {
            b.iter(|| parse(std::hint::black_box(src)).expect("valid formula"));
        });
    }
    g.finish();
}

fn bench_analyzer(c: &mut Criterion) {
    let trace = synthetic_trace(10_000);
    let mut g = c.benchmark_group("analyzer");
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.bench_function("formula2_power_10k_records", |b| {
        b.iter_batched(
            || Analyzer::from_formula(&power_distribution(100)).expect("valid"),
            |a| a.analyze(std::hint::black_box(&trace)),
            BatchSize::SmallInput,
        );
    });
    g.bench_function("formula3_throughput_10k_records", |b| {
        b.iter_batched(
            || Analyzer::from_formula(&throughput_distribution(100)).expect("valid"),
            |a| a.analyze(std::hint::black_box(&trace)),
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_checker(c: &mut Criterion) {
    let trace = synthetic_trace(10_000);
    let formula = parse("time(forward[i+100]) - time(forward[i]) <= 10000").expect("valid");
    let mut g = c.benchmark_group("checker");
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.bench_function("latency_10k_records", |b| {
        b.iter_batched(
            || Checker::from_formula(&formula).expect("valid"),
            |ch| ch.check(std::hint::black_box(&trace)),
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_trace_text(c: &mut Criterion) {
    let trace = synthetic_trace(5_000);
    let text = trace.to_text();
    let mut g = c.benchmark_group("trace_text");
    g.bench_function("to_text_5k", |b| {
        b.iter(|| std::hint::black_box(&trace).to_text())
    });
    g.bench_function("from_text_5k", |b| {
        b.iter(|| Trace::from_text(std::hint::black_box(&text)).expect("valid"));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_parser,
    bench_analyzer,
    bench_checker,
    bench_trace_text
);
criterion_main!(benches);
