//! Criterion benches for the DVS policy automata — these run once per
//! monitor window inside the platform, so their cost bounds the monitor
//! overhead.

use abdex::dvs::{Edvs, EdvsConfig, ScalingDecision, Tdvs, TdvsConfig, VfLadder};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_tdvs(c: &mut Criterion) {
    let mut g = c.benchmark_group("policy_decisions");
    g.throughput(Throughput::Elements(1_000));
    g.bench_function("tdvs_1k_windows", |b| {
        b.iter(|| {
            let mut policy = Tdvs::new(TdvsConfig::default(), VfLadder::xscale_npu());
            let mut acc = 0u64;
            for k in 0..1_000u32 {
                let observed = 600.0 + f64::from(k % 17) * 60.0;
                if policy.on_window(std::hint::black_box(observed)) != ScalingDecision::Hold { acc += 1; }
            }
            acc
        });
    });
    g.bench_function("edvs_1k_windows", |b| {
        b.iter(|| {
            let mut policy = Edvs::new(EdvsConfig::default(), VfLadder::xscale_npu());
            let mut acc = 0u64;
            for k in 0..1_000u32 {
                let idle = f64::from(k % 10) / 20.0;
                if policy.on_window(std::hint::black_box(idle)) != ScalingDecision::Hold { acc += 1; }
            }
            acc
        });
    });
    g.finish();
}

criterion_group!(benches, bench_tdvs);
criterion_main!(benches);
