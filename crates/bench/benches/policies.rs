//! Criterion benches for the DVS policy automata and the trait-object
//! dispatch path — these run once per monitor window inside the platform,
//! so their cost bounds the monitor overhead.

use abdex::dvs::{
    Edvs, EdvsConfig, MeObservation, PolicySpec, QueueObservation, ScalingDecision, Tdvs,
    TdvsConfig, VfLadder,
};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_tdvs(c: &mut Criterion) {
    let mut g = c.benchmark_group("policy_decisions");
    g.throughput(Throughput::Elements(1_000));
    g.bench_function("tdvs_1k_windows", |b| {
        b.iter(|| {
            let mut policy = Tdvs::new(TdvsConfig::default(), VfLadder::xscale_npu());
            let mut acc = 0u64;
            for k in 0..1_000u32 {
                let observed = 600.0 + f64::from(k % 17) * 60.0;
                if policy.on_window(std::hint::black_box(observed)) != ScalingDecision::Hold {
                    acc += 1;
                }
            }
            acc
        });
    });
    g.bench_function("edvs_1k_windows", |b| {
        b.iter(|| {
            let mut policy = Edvs::new(EdvsConfig::default(), VfLadder::xscale_npu());
            let mut acc = 0u64;
            for k in 0..1_000u32 {
                let idle = f64::from(k % 10) / 20.0;
                if policy.on_window(std::hint::black_box(idle)) != ScalingDecision::Hold {
                    acc += 1;
                }
            }
            acc
        });
    });
    // The platform-facing path: boxed trait object fed full observations,
    // for every registered policy.
    for name in ["tdvs", "edvs", "combined", "queue", "proportional"] {
        g.bench_function(format!("trait_{name}_1k_windows"), |b| {
            let ladder = VfLadder::xscale_npu();
            let spec = PolicySpec::parse(name).expect("builtin");
            b.iter(|| {
                let mut policy = spec.build(&ladder);
                let mut mes = vec![
                    MeObservation {
                        idle_fraction: 0.0,
                        level: 4
                    };
                    6
                ];
                let mut moves = 0u64;
                for k in 0..1_000u64 {
                    for (m, me) in mes.iter_mut().enumerate() {
                        me.idle_fraction = f64::from((k as u32 + m as u32) % 10) / 20.0;
                    }
                    let obs = abdex::dvs::PolicyObservation {
                        window: k,
                        window_us: 66.6,
                        aggregate_mbps: 600.0 + (k % 17) as f64 * 60.0,
                        mes: &mes,
                        rx_fifo: QueueObservation {
                            occupancy: (k % 2048) as usize,
                            capacity: 2048,
                            dropped: 0,
                        },
                        tx_queue: QueueObservation {
                            occupancy: 0,
                            capacity: 2048,
                            dropped: 0,
                        },
                    };
                    let response = policy.on_window(std::hint::black_box(&obs));
                    for (me, d) in mes.iter_mut().zip(&response.decisions) {
                        match d {
                            ScalingDecision::Up => me.level = (me.level + 1).min(4),
                            ScalingDecision::Down => me.level = me.level.saturating_sub(1),
                            ScalingDecision::Hold => {}
                        }
                        moves += u64::from(*d != ScalingDecision::Hold);
                    }
                }
                moves
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_tdvs);
criterion_main!(benches);
