//! Criterion benches for the simulator itself: simulated cycles per
//! wall-clock second for each benchmark application and policy.

use abdex::dvs::{EdvsConfig, TdvsConfig};
use abdex::nepsim::{Benchmark, NpuConfig, PolicySpec, Simulator};
use abdex::traffic::TrafficLevel;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

const CYCLES: u64 = 200_000;

fn bench_benchmarks(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_by_benchmark");
    g.throughput(Throughput::Elements(CYCLES));
    for bench in Benchmark::ALL {
        g.bench_function(bench.to_string(), |b| {
            b.iter(|| {
                let config = NpuConfig::builder()
                    .benchmark(bench)
                    .traffic(TrafficLevel::High)
                    .seed(7)
                    .build();
                Simulator::new(config).run_cycles(std::hint::black_box(CYCLES))
            });
        });
    }
    g.finish();
}

fn bench_policies(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_by_policy");
    g.throughput(Throughput::Elements(CYCLES));
    for (name, policy) in [
        ("nodvs", PolicySpec::NoDvs),
        ("tdvs", PolicySpec::Tdvs(TdvsConfig::default())),
        ("edvs", PolicySpec::Edvs(EdvsConfig::default())),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let config = NpuConfig::builder()
                    .benchmark(Benchmark::Ipfwdr)
                    .traffic(TrafficLevel::High)
                    .policy(policy.clone())
                    .seed(7)
                    .build();
                Simulator::new(config).run_cycles(std::hint::black_box(CYCLES))
            });
        });
    }
    g.finish();
}

fn bench_traffic_stream(c: &mut Criterion) {
    use abdex::traffic::{ArrivalConfig, PacketStream};
    let mut g = c.benchmark_group("traffic");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("generate_10k_packets", |b| {
        b.iter(|| {
            let stream = PacketStream::new(ArrivalConfig::for_level(TrafficLevel::High), 3);
            stream
                .take(10_000)
                .map(|p| u64::from(p.size_bytes))
                .sum::<u64>()
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_benchmarks,
    bench_policies,
    bench_traffic_stream
);
criterion_main!(benches);
