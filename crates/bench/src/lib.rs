//! Shared plumbing for the figure-regeneration binaries and Criterion
//! benches.
//!
//! Every `fig*` binary accepts an optional first argument: the number of
//! base-clock cycles to simulate per configuration (default: the paper's
//! 8×10⁶). Pass a smaller number for a quick look:
//!
//! ```text
//! cargo run --release -p abdex-bench --bin fig06_tdvs_power -- 1000000
//! ```

#![warn(missing_docs)]

use abdex::PAPER_RUN_CYCLES;

/// Reads the per-configuration cycle budget from `argv[1]`, defaulting to
/// the paper's 8×10⁶.
#[must_use]
pub fn cycles_from_args() -> u64 {
    std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(PAPER_RUN_CYCLES)
}

/// The seed shared by all figure binaries so every figure describes the
/// same simulated system.
pub const FIG_SEED: u64 = 42;

/// Renders a fraction in `[0, 1]` as a crude horizontal bar for terminal
/// plots.
#[must_use]
pub fn bar(fraction: f64, width: usize) -> String {
    let n = (fraction.clamp(0.0, 1.0) * width as f64).round() as usize;
    let mut s = String::with_capacity(width);
    for k in 0..width {
        s.push(if k < n { '#' } else { '.' });
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_renders_fractions() {
        assert_eq!(bar(0.0, 4), "....");
        assert_eq!(bar(1.0, 4), "####");
        assert_eq!(bar(0.5, 4), "##..");
        assert_eq!(bar(2.0, 4), "####", "clamps above 1");
    }

    #[test]
    fn default_cycles_is_paper_length() {
        // argv[1] in the test harness is a filter, not a number, so the
        // default must kick in.
        assert_eq!(cycles_from_args(), PAPER_RUN_CYCLES);
    }
}
