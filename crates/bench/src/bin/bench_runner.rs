//! Machine-readable perf baseline for the `xrun` runner: wall-time of
//! the same simulation batch executed serially (1 worker) and in
//! parallel (one worker per CPU), written as `BENCH_runner.json`.
//!
//! ```text
//! cargo run --release -p abdex-bench --bin bench_runner -- [CYCLES] [JOBS] [OUT]
//! ```
//!
//! Defaults: 1×10⁶ cycles per job, 8 jobs, `BENCH_runner.json` in the
//! current directory. The batch is a small TDVS threshold × window
//! grid on `ipfwdr`, the paper's §4.1 workload; the harness also
//! cross-checks that both executions produced bit-identical reports and
//! records the verdict, so the baseline doubles as a determinism smoke
//! test.

use std::time::Instant;

use abdex::dvs::TdvsConfig;
use abdex::xrun::{derive_seed, Benchmark, JobSpec, PolicySpec, Runner, TrafficLevel};

fn main() {
    let mut args = std::env::args().skip(1);
    let cycles: u64 = args
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000);
    let jobs: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);
    let out = args
        .next()
        .unwrap_or_else(|| "BENCH_runner.json".to_owned());

    let thresholds = [800.0, 1000.0, 1200.0, 1400.0];
    let windows = [20_000, 40_000, 60_000, 80_000];
    let specs: Vec<JobSpec> = (0..jobs)
        .map(|k| JobSpec {
            benchmark: Benchmark::Ipfwdr,
            traffic: TrafficLevel::High.into(),
            policy: PolicySpec::Tdvs(TdvsConfig {
                top_threshold_mbps: thresholds[(k as usize) % thresholds.len()],
                window_cycles: windows[(k as usize / thresholds.len()) % windows.len()],
            }),
            cycles,
            seed: derive_seed(42, k),
        })
        .collect();

    let serial_runner = Runner::serial();
    let parallel_runner = Runner::new();
    let parallel_workers = parallel_runner.workers().min(specs.len());

    eprintln!(
        "bench_runner: {} jobs x {} cycles, serial then {} workers",
        specs.len(),
        cycles,
        parallel_workers
    );

    let start = Instant::now();
    let serial = serial_runner.run_specs(&specs);
    let serial_s = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let parallel = parallel_runner.run_specs(&specs);
    let parallel_s = start.elapsed().as_secs_f64();

    let identical = serial.len() == parallel.len()
        && serial
            .iter()
            .zip(&parallel)
            .all(|(s, p)| match (&s.outcome, &p.outcome) {
                (Ok(s), Ok(p)) => {
                    s.forwarded_packets == p.forwarded_packets
                        && s.total_switches == p.total_switches
                        && s.total_energy_uj().to_bits() == p.total_energy_uj().to_bits()
                }
                _ => false,
            });
    let speedup = if parallel_s > 0.0 {
        serial_s / parallel_s
    } else {
        f64::NAN
    };
    // JSON has no NaN/inf literal; degenerate timings become null.
    let speedup_json = if speedup.is_finite() {
        format!("{speedup:.3}")
    } else {
        "null".to_owned()
    };

    let doc = format!(
        "{{\"bench\":\"xrun_runner\",\"jobs\":{},\"cycles_per_job\":{},\
         \"available_parallelism\":{},\"serial_workers\":1,\"parallel_workers\":{},\
         \"serial_s\":{:.4},\"parallel_s\":{:.4},\"speedup\":{speedup_json},\
         \"identical_results\":{}}}\n",
        specs.len(),
        cycles,
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        parallel_workers,
        serial_s,
        parallel_s,
        identical,
    );
    std::fs::write(&out, &doc).expect("write baseline JSON");
    eprintln!(
        "serial {serial_s:.2}s, parallel {parallel_s:.2}s, speedup {speedup:.2}x, \
         identical={identical} -> {out}"
    );
    assert!(identical, "parallel results diverged from serial");
}
