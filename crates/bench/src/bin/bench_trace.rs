//! Machine-readable perf baseline for the trace subsystem: packets
//! generated per wall-second (`abdex trace generate`'s inner loop) and
//! packets analyzed per wall-second serial vs parallel, written as
//! `BENCH_trace.json`.
//!
//! ```text
//! cargo run --release -p abdex-bench --bin bench_trace -- [CYCLES] [REPS] [OUT]
//! ```
//!
//! Defaults: 2×10⁷ cycles, 3 repetitions, `BENCH_trace.json` in the
//! current directory. The workload is the PR-8 acceptance spec —
//! Pareto gaps × lognormal sizes. Every repetition re-checks that the
//! parallel analysis equals the serial one bit-for-bit, so the
//! baseline doubles as a worker-count-invariance smoke test; the
//! fastest repetition is reported, as is conventional for throughput
//! baselines.

use std::time::Instant;

use abdex::traceio::{analyze_trace, generate_trace};
use abdex::{Runner, TrafficSpec};

fn main() {
    let mut args = std::env::args().skip(1);
    let cycles: u64 = args
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000_000);
    let reps: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(3);
    let out = args.next().unwrap_or_else(|| "BENCH_trace.json".to_owned());

    // The acceptance dists at a dense renewal rate (sub-microsecond
    // Pareto scale), so the baseline measures per-packet cost rather
    // than empty simulated time.
    let spec: TrafficSpec =
        "stochastic:gap=pareto:alpha=1.3,scale=0.5,max=500,size=lognormal:mu=6,sigma=1.2"
            .parse()
            .expect("builtin spec");
    eprintln!(
        "bench_trace: {reps} x {cycles} cycles of {}",
        spec.spec_string()
    );

    let mut best_gen_s = f64::INFINITY;
    let mut best_serial_s = f64::INFINITY;
    let mut best_parallel_s = f64::INFINITY;
    let mut packets = 0u64;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let (trace, _text) = generate_trace(&spec, cycles, 42).expect("spec builds");
        best_gen_s = best_gen_s.min(start.elapsed().as_secs_f64());
        packets = trace.len() as u64;

        let start = Instant::now();
        let serial = analyze_trace(&trace, &Runner::serial());
        best_serial_s = best_serial_s.min(start.elapsed().as_secs_f64());

        let start = Instant::now();
        let parallel = analyze_trace(&trace, &Runner::new());
        best_parallel_s = best_parallel_s.min(start.elapsed().as_secs_f64());

        assert_eq!(serial, parallel, "analysis diverged between worker counts");
    }

    let gen_pps = packets as f64 / best_gen_s;
    let serial_pps = packets as f64 / best_serial_s;
    let parallel_pps = packets as f64 / best_parallel_s;
    let doc = format!(
        "{{\"bench\":\"trace\",\"cycles\":{cycles},\"reps\":{},\"packets\":{packets},\
         \"available_parallelism\":{},\
         \"best_generate_s\":{best_gen_s:.4},\"generate_packets_per_s\":{gen_pps:.0},\
         \"best_analyze_serial_s\":{best_serial_s:.4},\"analyze_serial_packets_per_s\":{serial_pps:.0},\
         \"best_analyze_parallel_s\":{best_parallel_s:.4},\"analyze_parallel_packets_per_s\":{parallel_pps:.0}}}\n",
        reps.max(1),
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
    );
    std::fs::write(&out, &doc).expect("write baseline JSON");
    eprintln!(
        "{packets} packets: generate {gen_pps:.3e} pkt/s, analyze {serial_pps:.3e} serial / \
         {parallel_pps:.3e} parallel pkt/s -> {out}"
    );
}
