//! Machine-readable perf baseline for the fleet runner: wall-time of a
//! replicated fleet run at increasing `--chips`, written as
//! `BENCH_fleet.json`.
//!
//! ```text
//! cargo run --release -p abdex-bench --bin bench_fleet -- [CYCLES] [SEEDS] [OUT]
//! ```
//!
//! Defaults: 2×10⁵ cycles per chip, 2 replicates, `BENCH_fleet.json`
//! in the current directory. Each point simulates a least-loaded fleet
//! of 1/4/16/64 chips under cap-and-reallocate — chips × seeds jobs on
//! the `xrun` pool — so the file records how wall time scales with
//! fleet size on this machine. The largest fleet is also re-run on a
//! serial pool and byte-compared through the JSON document, so the
//! baseline doubles as a worker-count-determinism smoke test.

use std::time::Instant;

use abdex::fleet::{run_fleet, FleetConfig};
use abdex::json::fleet_json;
use abdex::stats::ConfidenceLevel;
use abdex::Runner;

const FLEET_SIZES: [usize; 4] = [1, 4, 16, 64];

fn config(chips: usize, cycles: u64) -> FleetConfig {
    let mut config = FleetConfig::new(chips);
    config.cycles = cycles;
    config.seed = 42;
    config.dispatch = "least-loaded".parse().expect("builtin dispatcher");
    config.fleet_policy = "cap-realloc:budget=8,period=100000"
        .parse()
        .expect("builtin fleet policy");
    config
}

fn main() {
    let mut args = std::env::args().skip(1);
    let cycles: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(200_000);
    let seeds: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(2);
    let out = args.next().unwrap_or_else(|| "BENCH_fleet.json".to_owned());

    let runner = Runner::new();
    eprintln!(
        "bench_fleet: fleets of {FLEET_SIZES:?} chips x {seeds} seeds x {cycles} cycles on {} \
         workers",
        runner.workers()
    );

    let mut points = Vec::new();
    let mut largest_doc = String::new();
    for chips in FLEET_SIZES {
        let config = config(chips, cycles);
        let start = Instant::now();
        let outcome = run_fleet(&config, seeds, &runner);
        let wall_s = start.elapsed().as_secs_f64();
        assert!(outcome.errors.is_empty(), "{:?}", outcome.errors);
        points.push(format!(
            "{{\"chips\":{chips},\"jobs\":{},\"wall_s\":{wall_s:.4}}}",
            chips * seeds
        ));
        eprintln!("  {chips:>3} chips: {wall_s:.2}s");
        largest_doc = fleet_json(&outcome, ConfidenceLevel::P95);
    }

    // Re-run the largest fleet serially; the emitted document must be
    // byte-identical for any worker count.
    let largest = *FLEET_SIZES.last().expect("non-empty size list");
    let serial = run_fleet(&config(largest, cycles), seeds, &Runner::serial());
    let identical = fleet_json(&serial, ConfidenceLevel::P95) == largest_doc;

    let doc = format!(
        "{{\"bench\":\"fleet\",\"cycles_per_chip\":{cycles},\"seeds\":{seeds},\
         \"available_parallelism\":{},\"workers\":{},\"points\":[{}],\
         \"identical_results\":{identical}}}\n",
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        runner.workers(),
        points.join(","),
    );
    std::fs::write(&out, &doc).expect("write baseline JSON");
    eprintln!("identical={identical} -> {out}");
    assert!(identical, "fleet results diverged from serial");
}
