//! Paper Fig. 5: the detailed VF scaling values and per-level traffic
//! thresholds for a 1000 Mbps top threshold.

use abdex::dvs::{Tdvs, TdvsConfig, VfLadder};

fn main() {
    let ladder = VfLadder::xscale_npu();
    let tdvs = Tdvs::new(
        TdvsConfig {
            top_threshold_mbps: 1000.0,
            window_cycles: 40_000,
        },
        ladder.clone(),
    );

    println!("Fig. 5 — The detailed scaling values (top threshold 1000 Mbps)");
    print!("{:<24}", "Frequency (MHz)");
    for p in ladder.iter().rev() {
        print!(" {:>6}", p.freq_mhz);
    }
    print!("\n{:<24}", "Voltage (V)");
    for p in ladder.iter().rev() {
        print!(" {:>6.2}", p.voltage());
    }
    print!("\n{:<24}", "Traffic Threshold (Mbps)");
    for idx in (0..ladder.len()).rev() {
        print!(" {:>6.0}", tdvs.threshold_at(idx));
    }
    println!();
    println!(
        "\nswitch penalty: 10 us ({} cycles at 600 MHz); \
         monitor adder: one 32-bit add per arriving packet",
        abdex::desim::Frequency::from_mhz(600).time_to_cycles(abdex::dvs::SWITCH_PENALTY)
    );
}
