//! Extension: the combined traffic+idle policy (TEDVS) the paper declines
//! to build on monitor-cost grounds (§4). Measures whether the conservative
//! composition buys anything over TDVS and EDVS alone.

use abdex::dvs::{CombinedConfig, EdvsConfig, TdvsConfig};
use abdex::nepsim::Benchmark;
use abdex::traffic::TrafficLevel;
use abdex::{Experiment, PolicySpec};
use abdex_bench::{cycles_from_args, FIG_SEED};

fn main() {
    let cycles = cycles_from_args();
    let window = 40_000;
    let tdvs = TdvsConfig {
        top_threshold_mbps: 1400.0,
        window_cycles: window,
    };
    let edvs = EdvsConfig {
        idle_threshold: 0.10,
        window_cycles: window,
    };
    let policies: Vec<(&str, PolicySpec)> = vec![
        ("noDVS", PolicySpec::NoDvs),
        ("TDVS", PolicySpec::Tdvs(tdvs)),
        ("EDVS", PolicySpec::Edvs(edvs)),
        ("TEDVS", PolicySpec::Combined(CombinedConfig { tdvs, edvs })),
    ];

    println!("combined-policy extension (TEDVS), ipfwdr, {cycles} cycles per cell:\n");
    println!(
        "{:>7} {:>8} {:>12} {:>14} {:>9} {:>10}",
        "traffic", "policy", "mean_power_w", "tput_mbps", "switches", "monitor_uj"
    );
    for traffic in TrafficLevel::ALL {
        for (name, policy) in &policies {
            let r = Experiment {
                benchmark: Benchmark::Ipfwdr,
                traffic: traffic.into(),
                policy: policy.clone(),
                cycles,
                seed: FIG_SEED,
            }
            .run();
            println!(
                "{:>7} {:>8} {:>12.3} {:>14.1} {:>9} {:>10.4}",
                traffic.to_string(),
                name,
                r.sim.mean_power_w(),
                r.sim.throughput_mbps(),
                r.sim.total_switches,
                r.sim.monitor_energy_uj,
            );
        }
        println!();
    }
    println!(
        "TEDVS scales a ME down only when traffic is light AND the ME is idle,\n\
         and pays the TDVS monitor-adder energy on every arriving packet."
    );
}
