//! Machine-readable baseline for the content-addressed result cache:
//! the same replicated TDVS grid is run twice against a scratch cache —
//! once cold (every cell simulates and is published) and once warm
//! (every cell is served from disk) — and the wall-times of both passes
//! are written as `BENCH_ccache.json`.
//!
//! ```text
//! cargo run --release -p abdex-bench --bin bench_ccache -- [CYCLES] [SEEDS] [OUT]
//! ```
//!
//! Defaults: 4×10⁵ cycles per job, 8 replicates per cell,
//! `BENCH_ccache.json` in the current directory. The binary asserts the
//! cache contract rather than merely reporting it: the warm pass must
//! perform **zero** simulations (its miss counter does not move) and
//! must be at least 5× faster than the cold pass — a warm "hit" that
//! quietly re-simulated would fail both gates. The scratch cache lives
//! in a process-scoped temp directory and is removed on exit, so the
//! numbers are never polluted by a previous run's store.

use std::time::Instant;

use abdex::nepsim::Benchmark;
use abdex::replicate::try_replicated_sweep_tdvs;
use abdex::traffic::TrafficLevel;
use abdex::{Runner, TdvsGrid};

fn main() {
    let mut args = std::env::args().skip(1);
    let cycles: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(400_000);
    let seeds: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);
    let out = args
        .next()
        .unwrap_or_else(|| "BENCH_ccache.json".to_owned());

    let dir = std::env::temp_dir().join(format!("abdex-bench-ccache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = abdex::Cache::open(&dir).expect("open scratch cache");
    let runner = Runner::new().with_cache(cache);

    let grid = TdvsGrid {
        thresholds_mbps: vec![1000.0, 1400.0],
        windows_cycles: vec![20_000, 40_000],
    };
    let jobs = grid.len() as u64 * seeds;

    eprintln!(
        "bench_ccache: {} cells x {seeds} seeds x {cycles} cycles on {} workers, cache at {}",
        grid.len(),
        runner.workers(),
        dir.display()
    );

    let pass = || {
        let start = Instant::now();
        let cells = try_replicated_sweep_tdvs(
            &runner,
            Benchmark::Ipfwdr,
            &TrafficLevel::High.into(),
            &grid,
            cycles,
            42,
            seeds,
        );
        for cell in &cells {
            cell.as_ref().expect("no cell failed");
        }
        start.elapsed().as_secs_f64()
    };

    let cold_s = pass();
    let after_cold = runner.cache().expect("runner is cached").counters();
    assert_eq!(after_cold.misses, jobs, "cold pass must miss every job");
    assert_eq!(after_cold.stores, jobs, "cold pass must publish every job");

    let warm_s = pass();
    let after_warm = runner.cache().expect("runner is cached").counters();
    let warm_simulations = after_warm.misses - after_cold.misses;
    assert_eq!(warm_simulations, 0, "warm pass must not simulate");
    assert_eq!(after_warm.hits, jobs, "warm pass must hit every job");

    let speedup = cold_s / warm_s;
    assert!(
        speedup >= 5.0,
        "warm pass must be at least 5x faster than cold (got {speedup:.2}x: \
         cold {cold_s:.4}s, warm {warm_s:.4}s)"
    );

    let doc = format!(
        "{{\"bench\":\"ccache\",\"cells\":{},\"seeds\":{seeds},\"cycles_per_job\":{cycles},\
         \"jobs\":{jobs},\"available_parallelism\":{},\"workers\":{},\
         \"cold_s\":{cold_s:.4},\"warm_s\":{warm_s:.4},\"speedup\":{speedup:.3},\
         \"warm_simulations\":{warm_simulations},\"warm_hits\":{},\"entries\":{}}}\n",
        grid.len(),
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        runner.workers(),
        after_warm.hits,
        runner.cache().expect("runner is cached").stats().entries,
    );
    std::fs::write(&out, &doc).expect("write baseline JSON");
    eprintln!(
        "cold {cold_s:.2}s, warm {warm_s:.4}s ({speedup:.1}x, {} warm simulations) -> {out}",
        warm_simulations
    );

    let _ = std::fs::remove_dir_all(&dir);
}
