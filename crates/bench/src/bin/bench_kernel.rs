//! Machine-readable perf baseline for the desim event kernel: the
//! simulated-cycles-per-wall-second and events-per-second throughput
//! of one paper-workload simulation, written as `BENCH_kernel.json`.
//!
//! ```text
//! cargo run --release -p abdex-bench --bin bench_kernel -- [CYCLES] [REPS] [OUT]
//! ```
//!
//! Defaults: 4×10⁶ cycles, 3 repetitions, `BENCH_kernel.json` in the
//! current directory. The workload is TDVS on `ipfwdr` under high
//! traffic — the paper's §4.1 cell. Every repetition must produce the
//! same [`obs::KernelCounters`] (they are a pure function of the event
//! sequence), so the baseline doubles as a kernel-determinism smoke
//! test; the fastest repetition is reported, as is conventional for
//! throughput baselines.

use std::time::Instant;

use abdex::nepsim::SimReport;
use abdex::xrun::{Benchmark, JobSpec, PolicySpec, TrafficLevel};

fn main() {
    let mut args = std::env::args().skip(1);
    let cycles: u64 = args
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4_000_000);
    let reps: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(3);
    let out = args
        .next()
        .unwrap_or_else(|| "BENCH_kernel.json".to_owned());

    let spec = JobSpec {
        benchmark: Benchmark::Ipfwdr,
        traffic: TrafficLevel::High.into(),
        policy: PolicySpec::parse("tdvs:threshold=1200").expect("builtin policy"),
        cycles,
        seed: 42,
    };

    eprintln!("bench_kernel: {reps} x {cycles} cycles of {}", spec.label());

    let mut best_s = f64::INFINITY;
    let mut report: Option<SimReport> = None;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let r = spec.simulate();
        let elapsed = start.elapsed().as_secs_f64();
        best_s = best_s.min(elapsed);
        if let Some(prev) = &report {
            assert_eq!(
                prev.kernel, r.kernel,
                "kernel counters diverged across repetitions"
            );
        }
        report = Some(r);
    }
    let report = report.expect("at least one repetition ran");
    let kernel = report.kernel;

    let cycles_per_s = cycles as f64 / best_s;
    let events_per_s = kernel.events_processed as f64 / best_s;
    let doc = format!(
        "{{\"bench\":\"desim_kernel\",\"cycles\":{cycles},\"reps\":{},\
         \"available_parallelism\":{},\
         \"events_scheduled\":{},\"events_processed\":{},\"heap_ops\":{},\
         \"peak_heap_len\":{},\"best_s\":{best_s:.4},\
         \"sim_cycles_per_s\":{cycles_per_s:.0},\"events_per_s\":{events_per_s:.0}}}\n",
        reps.max(1),
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        kernel.events_scheduled,
        kernel.events_processed,
        kernel.heap_ops(),
        kernel.peak_heap_len,
    );
    std::fs::write(&out, &doc).expect("write baseline JSON");
    eprintln!(
        "best {best_s:.3}s: {cycles_per_s:.3e} sim cycles/s, {events_per_s:.3e} events/s, \
         {} events, peak heap {} -> {out}",
        kernel.events_processed, kernel.peak_heap_len
    );
}
