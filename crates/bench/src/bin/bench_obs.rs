//! Machine-readable baseline for the span profiler's overhead: the
//! same 16-cell TDVS sweep is timed with the profiler disarmed and
//! armed, interleaved A/B over several rounds, and the medians are
//! written as `BENCH_obs.json`.
//!
//! ```text
//! cargo run --release -p abdex-bench --bin bench_obs -- [CYCLES] [ROUNDS] [OUT]
//! ```
//!
//! Defaults: 8×10⁵ cycles per cell, 5 rounds, `BENCH_obs.json` in the
//! current directory. The binary asserts the profiler's contract
//! rather than merely reporting it: the armed median must be within
//! **5%** of the disarmed median — instrumentation that taxes the
//! simulation would defeat its always-on purpose — and the armed
//! passes must actually record spans (a disarmed-by-accident run
//! proves nothing). Rounds interleave disarmed/armed passes so clock
//! drift and cache warmth hit both sides equally.

use std::time::Instant;

use abdex::nepsim::Benchmark;
use abdex::sweep::try_sweep_tdvs;
use abdex::traffic::TrafficLevel;
use abdex::{Runner, TdvsGrid};

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

fn main() {
    let mut args = std::env::args().skip(1);
    let cycles: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(800_000);
    let rounds: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(5);
    let out = args.next().unwrap_or_else(|| "BENCH_obs.json".to_owned());

    // 4 x 4 = 16 cells, the ISSUE's reference workload.
    let grid = TdvsGrid {
        thresholds_mbps: vec![800.0, 1000.0, 1200.0, 1400.0],
        windows_cycles: vec![10_000, 20_000, 30_000, 40_000],
    };
    let runner = Runner::new();
    eprintln!(
        "bench_obs: {} cells x {cycles} cycles, {rounds} interleaved rounds on {} workers",
        grid.len(),
        runner.workers()
    );

    let pass = || {
        let start = Instant::now();
        let cells = try_sweep_tdvs(
            &runner,
            Benchmark::Ipfwdr,
            &TrafficLevel::High.into(),
            &grid,
            cycles,
            42,
        );
        for cell in &cells {
            cell.as_ref().expect("no cell failed");
        }
        start.elapsed().as_secs_f64()
    };

    // Warm up both code paths (allocator, traffic tables) before timing.
    pass();
    abdex::obs::prof::set_enabled(true);
    pass();
    let _ = abdex::obs::prof::drain();
    abdex::obs::prof::set_enabled(false);

    let mut disarmed = Vec::with_capacity(rounds);
    let mut armed = Vec::with_capacity(rounds);
    let mut spans = 0usize;
    for _ in 0..rounds {
        disarmed.push(pass());
        abdex::obs::prof::set_enabled(true);
        armed.push(pass());
        abdex::obs::prof::set_enabled(false);
        // Drain every round so buffered spans never accumulate across
        // passes (and to verify the armed pass actually recorded).
        let profile = abdex::obs::prof::drain();
        assert!(
            profile.spans.iter().any(|s| s.name == "simulate"),
            "armed pass recorded no simulate spans"
        );
        spans += profile.spans.len();
    }

    let disarmed_s = median(&mut disarmed);
    let armed_s = median(&mut armed);
    let overhead = armed_s / disarmed_s - 1.0;
    assert!(
        overhead <= 0.05,
        "profiler overhead above 5%: armed {armed_s:.4}s vs disarmed {disarmed_s:.4}s \
         ({:.1}%)",
        overhead * 100.0
    );

    let doc = format!(
        "{{\"bench\":\"obs\",\"cells\":{},\"cycles_per_cell\":{cycles},\"rounds\":{rounds},\
         \"available_parallelism\":{},\"workers\":{},\"disarmed_s\":{disarmed_s:.4},\
         \"armed_s\":{armed_s:.4},\"overhead_fraction\":{overhead:.4},\
         \"spans_per_round\":{}}}\n",
        grid.len(),
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        runner.workers(),
        spans / rounds,
    );
    std::fs::write(&out, &doc).expect("write baseline JSON");
    eprintln!(
        "disarmed {disarmed_s:.4}s, armed {armed_s:.4}s ({:+.2}% overhead, \
         {} spans/round) -> {out}",
        overhead * 100.0,
        spans / rounds
    );
}
