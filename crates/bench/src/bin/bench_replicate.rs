//! Machine-readable baseline for replication batches: wall-time of a
//! k-seed replicated TDVS grid plus the widest relative confidence
//! interval observed across its cells, written as
//! `BENCH_replicate.json`.
//!
//! ```text
//! cargo run --release -p abdex-bench --bin bench_replicate -- [CYCLES] [SEEDS] [OUT]
//! ```
//!
//! Defaults: 4×10⁵ cycles per job, 8 replicates per cell,
//! `BENCH_replicate.json` in the current directory. The batch is a 2×2
//! TDVS threshold × window grid on `ipfwdr` at high traffic — 4 cells
//! × k seeds jobs on the `xrun` pool. The "widest CI" figure is the
//! point of the file: it is the noisiest number in the grid at the 95 %
//! level, so future PRs that grow k (or lengthen runs, or de-noise the
//! simulator) can watch the variance shrink release over release.

use std::time::Instant;

use abdex::nepsim::Benchmark;
use abdex::replicate::try_replicated_sweep_tdvs;
use abdex::stats::ConfidenceLevel;
use abdex::traffic::TrafficLevel;
use abdex::{Runner, TdvsGrid};

fn main() {
    let mut args = std::env::args().skip(1);
    let cycles: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(400_000);
    let seeds: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);
    let out = args
        .next()
        .unwrap_or_else(|| "BENCH_replicate.json".to_owned());

    let grid = TdvsGrid {
        thresholds_mbps: vec![1000.0, 1400.0],
        windows_cycles: vec![20_000, 40_000],
    };
    let runner = Runner::new();
    let level = ConfidenceLevel::P95;

    eprintln!(
        "bench_replicate: {} cells x {seeds} seeds x {cycles} cycles on {} workers",
        grid.len(),
        runner.workers()
    );

    let start = Instant::now();
    let cells: Vec<_> = try_replicated_sweep_tdvs(
        &runner,
        Benchmark::Ipfwdr,
        &TrafficLevel::High.into(),
        &grid,
        cycles,
        42,
        seeds,
    )
    .into_iter()
    .map(|o| o.expect("no cell failed"))
    .collect();
    let wall_s = start.elapsed().as_secs_f64();

    // The noisiest interval anywhere in the grid, by relative width.
    let (cell, metric, ci) = cells
        .iter()
        .filter_map(|c| {
            c.result
                .metrics
                .widest_relative_ci(level)
                .map(|(metric, ci)| (c, metric, ci))
        })
        .max_by(|(_, _, a), (_, _, b)| {
            a.relative_half_width()
                .partial_cmp(&b.relative_half_width())
                .expect("relative widths are finite")
        })
        .expect("grid is non-empty");

    let doc = format!(
        "{{\"bench\":\"replicate\",\"cells\":{},\"seeds\":{seeds},\"cycles_per_job\":{cycles},\
         \"jobs\":{},\"available_parallelism\":{},\"workers\":{},\"wall_s\":{wall_s:.4},\
         \"ci_level\":{},\
         \"widest_ci\":{{\"cell\":\"threshold={} window={}\",\"metric\":\"{metric}\",\
         \"mean\":{},\"half_width\":{},\"relative\":{:.6}}}}}\n",
        cells.len(),
        cells.len() as u64 * seeds,
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        runner.workers(),
        level.percent(),
        cell.threshold_mbps,
        cell.window_cycles,
        ci.mean,
        ci.half_width,
        ci.relative_half_width(),
    );
    std::fs::write(&out, &doc).expect("write baseline JSON");
    eprintln!(
        "{} jobs in {wall_s:.2}s; widest {level} CI: {metric} at threshold={} window={} \
         ({ci:.4}, relative {:.3}) -> {out}",
        cells.len() as u64 * seeds,
        cell.threshold_mbps,
        cell.window_cycles,
        ci.relative_half_width(),
    );
}
