//! Paper Fig. 9: the 3-D surface of the throughput above which 80 % of
//! formula-(3) instances fall, over the threshold × window grid.

use abdex::nepsim::Benchmark;
use abdex::sweep::throughput_surface;
use abdex::tables::render_surface;
use abdex::traffic::TrafficLevel;
use abdex::{optimal_tdvs, sweep_tdvs, DesignPriority, TdvsGrid};
use abdex_bench::{cycles_from_args, FIG_SEED};

fn main() {
    let cycles = cycles_from_args();
    let grid = TdvsGrid::default();
    eprintln!(
        "fig09: sweeping {} cells at {cycles} cycles each...",
        grid.len()
    );
    let cells = sweep_tdvs(
        Benchmark::Ipfwdr,
        &TrafficLevel::High.into(),
        &grid,
        cycles,
        FIG_SEED,
    );
    println!(
        "Fig. 9 — {}",
        render_surface(
            &throughput_surface(&cells),
            "80th-percentile throughput (Mbps)"
        )
    );

    for (priority, label) in [
        (DesignPriority::Performance, "performance"),
        (DesignPriority::Power, "power"),
    ] {
        let best = optimal_tdvs(&cells, priority).expect("non-empty sweep");
        println!(
            "optimal ({label} priority): threshold {:.0} Mbps, window {}k cycles",
            best.threshold_mbps,
            best.window_cycles / 1000
        );
    }
}
