//! Paper Fig. 6: power distributions (fraction of LOC formula-(2)
//! instances below x) for TDVS on `ipfwdr`, for each top threshold and
//! window size, plus the noDVS baseline.

use abdex::nepsim::Benchmark;
use abdex::traffic::TrafficLevel;
use abdex::{sweep_tdvs, Experiment, PolicySpec, TdvsGrid};
use abdex_bench::{bar, cycles_from_args, FIG_SEED};

fn main() {
    let cycles = cycles_from_args();
    let grid = TdvsGrid::default();
    eprintln!(
        "fig06: sweeping {} TDVS cells of ipfwdr/high at {cycles} cycles each...",
        grid.len()
    );
    let cells = sweep_tdvs(
        Benchmark::Ipfwdr,
        &TrafficLevel::High.into(),
        &grid,
        cycles,
        FIG_SEED,
    );
    let baseline = Experiment {
        benchmark: Benchmark::Ipfwdr,
        traffic: TrafficLevel::High.into(),
        policy: PolicySpec::NoDvs,
        cycles,
        seed: FIG_SEED,
    }
    .run();

    let xs: Vec<f64> = (0..=10).map(|k| 0.6 + 0.1 * k as f64).collect();
    for &threshold in &grid.thresholds_mbps {
        println!("\nPower -- threshold {threshold:.0} Mbps (fraction of instances <= x W)");
        print!("{:>8}", "x(W)");
        for &w in &grid.windows_cycles {
            print!(" {:>7}k", w / 1000);
        }
        println!(" {:>8}", "noDVS");
        for &x in &xs {
            print!("{x:>8.2}");
            for &w in &grid.windows_cycles {
                let cell = cells
                    .iter()
                    .find(|c| c.threshold_mbps == threshold && c.window_cycles == w)
                    .expect("cell exists");
                print!(" {:>8.3}", cell.result.power.fraction_le(x));
            }
            println!(" {:>8.3}", baseline.power.fraction_le(x));
        }
    }

    println!(
        "\nsummary: p80 power (W) per cell (noDVS {:.3}):",
        baseline.p80_power_w()
    );
    for c in &cells {
        let p = c.result.p80_power_w();
        println!(
            "  thr {:>5.0} win {:>5}k : {:>6.3}  {}",
            c.threshold_mbps,
            c.window_cycles / 1000,
            p,
            bar((p - 0.6) / 1.0, 30)
        );
    }
}
