//! Extension: the two policies the paper could not try, exercised through
//! the `DvsPolicy` trait API — queue-aware scaling (QDVS) on the receive
//! FIFO and a per-ME proportional–integral controller (PDVS) — compared
//! against the paper's three policies on every traffic level.

use abdex::nepsim::Benchmark;
use abdex::traffic::TrafficLevel;
use abdex::{Experiment, PolicySpec};
use abdex_bench::{cycles_from_args, FIG_SEED};

fn main() {
    let cycles = cycles_from_args();
    let specs: Vec<PolicySpec> = [
        "nodvs",
        "tdvs:threshold=1400",
        "edvs",
        "queue:high=0.75,low=0.2",
        "proportional:kp=4,ki=0.5",
    ]
    .iter()
    .map(|s| s.parse().expect("valid builtin spec"))
    .collect();

    println!("new-policy extension (QDVS, PDVS), ipfwdr, {cycles} cycles per cell:\n");
    println!(
        "{:>7} {:>6} {:>12} {:>14} {:>9} {:>11}",
        "traffic", "policy", "mean_power_w", "tput_mbps", "switches", "loss_ratio"
    );
    for traffic in TrafficLevel::ALL {
        let mut baseline = None;
        for spec in &specs {
            let r = Experiment {
                benchmark: Benchmark::Ipfwdr,
                traffic: traffic.into(),
                policy: spec.clone(),
                cycles,
                seed: FIG_SEED,
            }
            .run();
            let power = r.sim.mean_power_w();
            let baseline = *baseline.get_or_insert(power);
            println!(
                "{:>7} {:>6} {:>7.3} (-{:>2.0}%) {:>14.1} {:>9} {:>11.4}",
                traffic.to_string(),
                spec.kind().to_string(),
                power,
                (1.0 - power / baseline) * 100.0,
                r.sim.throughput_mbps(),
                r.sim.total_switches,
                r.sim.loss_ratio(),
            );
        }
        println!();
    }
    println!(
        "QDVS reads one FIFO-occupancy register per window (no per-packet\n\
         monitor energy); PDVS integrates the idle error instead of\n\
         thresholding it, trading EDVS's oscillation for settling time."
    );
}
