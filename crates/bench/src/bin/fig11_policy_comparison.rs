//! Paper Fig. 11: power-distribution comparison of noDVS / EDVS / TDVS
//! across all four benchmarks and the three traffic levels (12 subplots).

use abdex::compare::{compare_policies, ComparisonConfig};
use abdex::dvs::PolicyKind;
use abdex::nepsim::Benchmark;
use abdex::tables::render_comparison;
use abdex::traffic::{TrafficLevel, TrafficSpec};
use abdex_bench::{cycles_from_args, FIG_SEED};

fn main() {
    let cycles = cycles_from_args();
    let cfg = ComparisonConfig {
        cycles,
        seed: FIG_SEED,
        ..ComparisonConfig::default()
    };
    eprintln!(
        "fig11: running {} cells at {cycles} cycles each...",
        Benchmark::ALL.len() * TrafficLevel::ALL.len() * 3
    );
    let cmp = compare_policies(&Benchmark::ALL, &TrafficSpec::paper_levels(), &cfg);

    // The 12 subplots: per benchmark x traffic, a power CDF over the
    // paper's 0.4..1.8 W axis.
    for benchmark in Benchmark::ALL {
        for traffic in TrafficLevel::ALL {
            println!("\n{benchmark} -- power(W) -- {traffic} traffic (fraction of instances <= x)");
            print!("{:>8}", "x(W)");
            for kind in [PolicyKind::NoDvs, PolicyKind::Edvs, PolicyKind::Tdvs] {
                print!(" {:>8}", kind.to_string());
            }
            println!();
            for k in 0..=7 {
                let x = 0.4 + 0.2 * f64::from(k);
                print!("{x:>8.1}");
                for kind in [PolicyKind::NoDvs, PolicyKind::Edvs, PolicyKind::Tdvs] {
                    let row = cmp
                        .row(benchmark, &traffic.into(), kind)
                        .expect("row exists");
                    print!(" {:>8.3}", row.result.power.fraction_le(x));
                }
                println!();
            }
        }
    }

    println!("\n{}", render_comparison(&cmp));
}
