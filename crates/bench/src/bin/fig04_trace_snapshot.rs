//! Paper Figs. 3 & 4: the event/annotation vocabulary and a snapshot of a
//! NePSim simulation trace.

use abdex::nepsim::{Benchmark, NpuConfig, Simulator, TraceConfig};
use abdex::traffic::TrafficLevel;

fn main() {
    println!("Fig. 3 — event and annotation types");
    println!("  events     : pipeline (instruction bundle enters a pipeline),");
    println!("               forward (an IP packet is forwarded),");
    println!("               fifo (an IP packet enters the processing queue)");
    println!("  annotations: cycle, time(us), energy(uJ), total_pkt, total_bit\n");

    let config = NpuConfig::builder()
        .benchmark(Benchmark::Ipfwdr)
        .traffic(TrafficLevel::Medium)
        .seed(abdex_bench::FIG_SEED)
        .trace(TraceConfig {
            emit_fifo: true,
            emit_pipeline: true,
        })
        .build();
    let mut sim = Simulator::new(config);
    let _ = sim.run_cycles(20_000);
    let trace = sim.into_trace();

    println!(
        "Fig. 4 — a snapshot of a NePSim simulation trace ({} records total)",
        trace.len()
    );
    let text = trace.to_text();
    for line in text.lines().take(24) {
        println!("  {line}");
    }
    println!("  ...");
}
