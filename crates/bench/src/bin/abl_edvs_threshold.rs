//! Ablation: the EDVS idle threshold. The paper picks 10 % from the idle
//! distribution (§4.2); this sweep shows what 5–40 % would have done.

use abdex::ablation::{render_ablation, sweep_edvs_idle_threshold};
use abdex::nepsim::Benchmark;
use abdex::traffic::TrafficLevel;
use abdex_bench::{cycles_from_args, FIG_SEED};

fn main() {
    let cycles = cycles_from_args();
    let thresholds = [0.05, 0.10, 0.20, 0.30, 0.40];
    eprintln!(
        "abl_edvs_threshold: {} EDVS thresholds on ipfwdr/high at {cycles} cycles each...",
        thresholds.len()
    );
    let cells = sweep_edvs_idle_threshold(
        Benchmark::Ipfwdr,
        &TrafficLevel::High.into(),
        &thresholds,
        40_000,
        cycles,
        FIG_SEED,
    );
    println!("EDVS idle-threshold ablation (ipfwdr, high traffic):\n");
    println!("{}", render_ablation(&cells, "idle_threshold"));
    println!(
        "paper's 10% choice sits where savings have saturated but the busy \
         windows still scale the MEs back up."
    );
}
