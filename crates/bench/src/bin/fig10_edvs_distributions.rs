//! Paper Fig. 10: power and throughput distributions under EDVS on
//! `ipfwdr`, for window sizes 20k–80k, against the noDVS baseline.

use abdex::dvs::EdvsConfig;
use abdex::nepsim::Benchmark;
use abdex::traffic::TrafficLevel;
use abdex::{Experiment, ExperimentResult, PolicySpec};
use abdex_bench::{cycles_from_args, FIG_SEED};

fn run(policy: PolicySpec, cycles: u64) -> ExperimentResult {
    Experiment {
        benchmark: Benchmark::Ipfwdr,
        traffic: TrafficLevel::High.into(),
        policy,
        cycles,
        seed: FIG_SEED,
    }
    .run()
}

fn main() {
    let cycles = cycles_from_args();
    let windows = [20_000u64, 40_000, 60_000, 80_000];
    eprintln!(
        "fig10: running {} EDVS windows + baseline at {cycles} cycles each...",
        windows.len()
    );

    let baseline = run(PolicySpec::NoDvs, cycles);
    let runs: Vec<(u64, ExperimentResult)> = windows
        .iter()
        .map(|&w| {
            let cfg = EdvsConfig {
                idle_threshold: 0.10,
                window_cycles: w,
            };
            (w, run(PolicySpec::Edvs(cfg), cycles))
        })
        .collect();

    println!("Power (fraction of formula-(2) instances <= x W)");
    print!("{:>8}", "x(W)");
    for (w, _) in &runs {
        print!(" {:>7}k", w / 1000);
    }
    println!(" {:>8}", "noDVS");
    for k in 0..=10 {
        let x = 0.7 + 0.1 * f64::from(k);
        print!("{x:>8.2}");
        for (_, r) in &runs {
            print!(" {:>8.3}", r.power.fraction_le(x));
        }
        println!(" {:>8.3}", baseline.power.fraction_le(x));
    }

    println!("\nThroughput (fraction of formula-(3) instances >= x Mbps)");
    print!("{:>8}", "x(Mbps)");
    for (w, _) in &runs {
        print!(" {:>7}k", w / 1000);
    }
    println!(" {:>8}", "noDVS");
    for k in 0..=8 {
        let x = 600.0 + 100.0 * f64::from(k);
        print!("{x:>8.0}");
        for (_, r) in &runs {
            print!(" {:>8.3}", r.throughput.fraction_ge(x));
        }
        println!(" {:>8.3}", baseline.throughput.fraction_ge(x));
    }

    println!("\nsummary (paper: ~23% power saving, no performance loss):");
    println!(
        "  noDVS : {:>6.3} W  {:>7.1} Mbps",
        baseline.sim.mean_power_w(),
        baseline.sim.throughput_mbps()
    );
    for (w, r) in &runs {
        let saving = 1.0 - r.sim.mean_power_w() / baseline.sim.mean_power_w();
        println!(
            "  {:>4}k : {:>6.3} W  {:>7.1} Mbps  (saves {:>4.1}%, {} switches)",
            w / 1000,
            r.sim.mean_power_w(),
            r.sim.throughput_mbps(),
            saving * 100.0,
            r.sim.total_switches
        );
    }
}
