//! Paper Fig. 1: power and performance of the Intel IXP NPU family.

use abdex::reference::ixp_family;

fn main() {
    println!("Fig. 1 — The power and performance of Intel IXP NPUs");
    println!(
        "{:<22} {:>8} {:>8} {:>8}",
        "Description", "IXP1200", "IXP2400", "IXP2800"
    );
    let t = ixp_family();
    println!(
        "{:<22} {:>8} {:>8} {:>8}",
        "Performance(MIPS)", t[0].performance_mips, t[1].performance_mips, t[2].performance_mips
    );
    println!(
        "{:<22} {:>8} {:>8} {:>8}",
        "Media Bandwidth(Gbps)",
        t[0].media_bandwidth_gbps,
        t[1].media_bandwidth_gbps,
        t[2].media_bandwidth_gbps
    );
    println!(
        "{:<22} {:>8} {:>8} {:>8}",
        "Frequency of ME(MHz)", t[0].me_freq_mhz, t[1].me_freq_mhz, t[2].me_freq_mhz
    );
    println!(
        "{:<22} {:>8} {:>8} {:>8}",
        "Number of MEs", t[0].num_mes, t[1].num_mes, t[2].num_mes
    );
    println!(
        "{:<22} {:>8} {:>8} {:>8}",
        "Power(W)", t[0].power_w, t[1].power_w, t[2].power_w
    );
    println!(
        "\n(power rises with complexity: {:.0} -> {:.0} -> {:.0} MIPS/W)",
        t[0].mips_per_watt(),
        t[1].mips_per_watt(),
        t[2].mips_per_watt()
    );
}
