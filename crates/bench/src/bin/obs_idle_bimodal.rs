//! Paper §4.2 observation: receiving-ME idle time is bimodal (under 5 %
//! or between 30 % and 40 % for ~90 % of the simulation), transmitting
//! MEs are almost always under 5 % idle. This binary runs one noDVS
//! simulation, samples per-ME idle fractions at every 40k-cycle window,
//! and bins them through LOC distribution analyzers.

use abdex::loc::{parse, Analyzer, Annotations, TraceRecord};
use abdex::nepsim::{Benchmark, MeRole, NpuConfig, Simulator};
use abdex::traffic::TrafficLevel;
use abdex_bench::{bar, cycles_from_args, FIG_SEED};

fn main() {
    let cycles = cycles_from_args();
    eprintln!("obs_idle_bimodal: simulating ipfwdr/high for {cycles} cycles...");
    let config = NpuConfig::builder()
        .benchmark(Benchmark::Ipfwdr)
        .traffic(TrafficLevel::High)
        .seed(FIG_SEED)
        .build();
    let mut sim = Simulator::new(config);
    let report = sim.run_cycles(cycles);

    let formula = parse("idle(window[i]) dist== (0.0, 0.5, 0.05)").expect("valid formula");
    let mut rx = Analyzer::from_formula(&formula).expect("valid analyzer");
    let mut tx = Analyzer::from_formula(&formula).expect("valid analyzer");
    for sample in &report.window_idle {
        let mut a = Annotations::default();
        a.set_extra("idle", sample.idle);
        let rec = TraceRecord::new("window", a);
        match sample.role {
            MeRole::Rx => rx.push(&rec),
            MeRole::Tx => tx.push(&rec),
        }
    }
    let rx = rx.finish();
    let tx = tx.finish();

    println!(
        "per-window idle fractions over {} windows x 6 MEs\n",
        report.windows
    );
    println!("receiving MEs (paper: <5% or 30-40% for ~90% of time):");
    for b in rx.bins() {
        println!(
            "  ({:>5.2}, {:>5.2}] {:>6.1}%  {}",
            b.lo,
            b.hi,
            b.fraction * 100.0,
            bar(b.fraction, 40)
        );
    }
    let low_mode = rx.fraction_le(0.05);
    let high_mode = rx.fraction_le(0.45) - rx.fraction_le(0.20);
    println!(
        "  -> {:.0}% of rx windows under 5% idle, {:.0}% between 20% and 45%; \
         together {:.0}%",
        low_mode * 100.0,
        high_mode * 100.0,
        (low_mode + high_mode) * 100.0
    );

    println!("\ntransmitting MEs (paper: almost always under 5%):");
    for b in tx.bins() {
        if b.count > 0 {
            println!(
                "  ({:>5.2}, {:>5.2}] {:>6.1}%  {}",
                b.lo,
                b.hi,
                b.fraction * 100.0,
                bar(b.fraction, 40)
            );
        }
    }
    println!(
        "  -> {:.1}% of tx windows under 5% idle",
        tx.fraction_le(0.05) * 100.0
    );
}
