//! Paper Fig. 2: a day of IP packet arrival rates (max/med/min envelope)
//! from the synthetic NLANR-like diurnal model.

use abdex::traffic::{DiurnalModel, TrafficLevel};

fn main() {
    let model = DiurnalModel::nlanr_like(abdex_bench::FIG_SEED);
    println!("Fig. 2 — Example IP packets distribution (bits/s)");
    println!("{:>6} {:>12} {:>12} {:>12}", "time", "max", "med", "min");
    // The paper's x-axis runs 9:47 to 16:43; we print the whole day at
    // 30-minute resolution.
    for half_hour in 0..48 {
        let t = half_hour as f64 * 1800.0;
        let s = model.sample(t);
        let hh = half_hour / 2;
        let mm = (half_hour % 2) * 30;
        println!(
            "{hh:>4}:{mm:02} {:>12.3e} {:>12.3e} {:>12.3e}",
            s.max_bps, s.med_bps, s.min_bps
        );
    }
    println!("\nsampling periods used by the experiments (paper §3.2):");
    for level in TrafficLevel::ALL {
        let t = DiurnalModel::sampling_time_for(level);
        let s = model.sample(t);
        println!(
            "  {level:>6}: {:02.0}:00, median {:.3e} bits/s -> {} Mbps aggregate target",
            t / 3600.0,
            s.med_bps,
            level.mean_rate_mbps()
        );
    }
}
