//! Paper Fig. 7: throughput distributions (fraction of LOC formula-(3)
//! instances above x) for TDVS on `ipfwdr`, per threshold and window size,
//! plus the noDVS baseline.

use abdex::nepsim::Benchmark;
use abdex::traffic::TrafficLevel;
use abdex::{sweep_tdvs, Experiment, PolicySpec, TdvsGrid};
use abdex_bench::{bar, cycles_from_args, FIG_SEED};

fn main() {
    let cycles = cycles_from_args();
    let grid = TdvsGrid::default();
    eprintln!(
        "fig07: sweeping {} TDVS cells of ipfwdr/high at {cycles} cycles each...",
        grid.len()
    );
    let cells = sweep_tdvs(
        Benchmark::Ipfwdr,
        &TrafficLevel::High.into(),
        &grid,
        cycles,
        FIG_SEED,
    );
    let baseline = Experiment {
        benchmark: Benchmark::Ipfwdr,
        traffic: TrafficLevel::High.into(),
        policy: PolicySpec::NoDvs,
        cycles,
        seed: FIG_SEED,
    }
    .run();

    let xs: Vec<f64> = (0..=10).map(|k| 400.0 + 100.0 * k as f64).collect();
    for &threshold in &grid.thresholds_mbps {
        println!("\nThroughput -- threshold {threshold:.0} Mbps (fraction of instances >= x Mbps)");
        print!("{:>8}", "x(Mbps)");
        for &w in &grid.windows_cycles {
            print!(" {:>7}k", w / 1000);
        }
        println!(" {:>8}", "noDVS");
        for &x in &xs {
            print!("{x:>8.0}");
            for &w in &grid.windows_cycles {
                let cell = cells
                    .iter()
                    .find(|c| c.threshold_mbps == threshold && c.window_cycles == w)
                    .expect("cell exists");
                print!(" {:>8.3}", cell.result.throughput.fraction_ge(x));
            }
            println!(" {:>8.3}", baseline.throughput.fraction_ge(x));
        }
    }

    println!(
        "\nsummary: p80 throughput (Mbps) per cell (noDVS {:.1}):",
        baseline.p80_throughput_mbps()
    );
    for c in &cells {
        let t = c.result.p80_throughput_mbps();
        println!(
            "  thr {:>5.0} win {:>5}k : {:>7.1}  {} ({} switches)",
            c.threshold_mbps,
            c.window_cycles / 1000,
            t,
            bar((t - 400.0) / 1000.0, 30),
            c.result.sim.total_switches
        );
    }
}
