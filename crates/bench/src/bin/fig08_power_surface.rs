//! Paper Fig. 8: the 3-D surface of the power value below which 80 % of
//! formula-(2) instances fall, over the threshold × window grid.

use abdex::nepsim::Benchmark;
use abdex::sweep::power_surface;
use abdex::tables::render_surface;
use abdex::traffic::TrafficLevel;
use abdex::{sweep_tdvs, TdvsGrid};
use abdex_bench::{cycles_from_args, FIG_SEED};

fn main() {
    let cycles = cycles_from_args();
    let grid = TdvsGrid::default();
    eprintln!(
        "fig08: sweeping {} cells at {cycles} cycles each...",
        grid.len()
    );
    let cells = sweep_tdvs(
        Benchmark::Ipfwdr,
        &TrafficLevel::High.into(),
        &grid,
        cycles,
        FIG_SEED,
    );
    println!(
        "Fig. 8 — {}",
        render_surface(&power_surface(&cells), "80th-percentile power (W)")
    );
}
