//! Ablation: a hysteresis dead band on the TDVS rule. §4.1 attributes the
//! 20k-window throughput cliff to VF oscillation burning 6000-cycle
//! penalties; this quantifies how much a dead band recovers.

use abdex::ablation::{render_ablation, sweep_tdvs_hysteresis};
use abdex::dvs::TdvsConfig;
use abdex::nepsim::Benchmark;
use abdex::traffic::TrafficLevel;
use abdex_bench::{cycles_from_args, FIG_SEED};

fn main() {
    let cycles = cycles_from_args();
    let bands = [0.0, 0.05, 0.10, 0.15, 0.25];
    let base = TdvsConfig {
        top_threshold_mbps: 1000.0,
        window_cycles: 20_000, // the paper's worst case
    };
    eprintln!(
        "abl_tdvs_hysteresis: {} bands on ipfwdr/high, 20k windows, {cycles} cycles each...",
        bands.len()
    );
    let cells = sweep_tdvs_hysteresis(
        Benchmark::Ipfwdr,
        &TrafficLevel::High.into(),
        base,
        &bands,
        cycles,
        FIG_SEED,
    );
    println!("TDVS hysteresis ablation (ipfwdr, high traffic, 20k windows):\n");
    println!("{}", render_ablation(&cells, "hysteresis"));
    println!(
        "band 0.0 is the paper's rule; larger bands trade responsiveness \
         for fewer 10us switch penalties."
    );
}
