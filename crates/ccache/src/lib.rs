//! Content-addressed result cache for deterministic simulation cells.
//!
//! Every experiment cell in this workspace is a pure function of its
//! canonical spec string (the `kvspec` rendering of a `JobSpec`, plus
//! axis context), and 1-vs-N worker bit-identity is CI-pinned — so a
//! cell's result can be memoized on disk and reused forever, as long
//! as three things hold:
//!
//! 1. **Keys are canonical**: [`Key`] hashes the exact spec string
//!    with two SplitMix64 lanes, salted with [`CACHE_EPOCH`] so a
//!    semantics change can never let a stale entry alias a fresh one.
//! 2. **Writes are atomic**: [`Cache::publish`] goes through a temp
//!    file + rename, so racing `--jobs` workers leave one valid entry.
//! 3. **Hits are byte-identical to cold runs**: the [`codec`] module
//!    round-trips every `u64` and `f64` bit-exactly, so tables,
//!    `--json` documents and `--record` exports cannot tell a warm
//!    run from a cold one (pinned in `crates/core/tests/determinism.rs`).
//!
//! Reads are corruption-tolerant: a damaged, truncated or
//! foreign-epoch entry is a miss, and the caller re-simulates.
//! "Dependency-free" the same way `xrun` is: nothing outside this
//! workspace and `std`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod codec;
pub mod json;
mod key;
mod store;

pub use key::{Key, CACHE_EPOCH};
pub use obs::CacheCounters;
pub use store::{Cache, CacheStats, DEFAULT_DIR};
