//! Canonical content-addressed keys.
//!
//! A cache key is a stable 128-bit hash of the exact canonical spec
//! string describing a cell (the `kvspec` rendering of a `JobSpec`,
//! plus any axis context — scenario segment boundaries, fleet shares
//! and caps). Two SplitMix64 lanes (the same mixer `derive_seed` is
//! built on) are seeded from [`CACHE_EPOCH`] and two distinct salts,
//! fold the string's bytes eight at a time, and are finalized with the
//! length — so a key is a pure function of `(epoch, spec)` and nothing
//! else, identical across platforms, processes and sessions.

use std::fmt;

/// The cache generation. Bump whenever simulator semantics change in a
/// way that alters any cached observable (report fields, analyzer
/// windows, traffic models, seeding conventions): every key is salted
/// with this epoch, so entries written under an older epoch can never
/// alias a fresh result — they simply stop being addressable and age
/// out via `gc`.
pub const CACHE_EPOCH: u64 = 1;

const HI_SALT: u64 = 0x9E37_79B9_7F4A_7C15;
const LO_SALT: u64 = 0xC2B2_AE3D_27D4_EB4F;

/// A 128-bit content-addressed cache key.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Key {
    hi: u64,
    lo: u64,
}

/// The SplitMix64 finalizer: a bijective 64-bit mixer.
const fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One hash lane: fold the bytes eight at a time (little-endian,
/// zero-padded tail), then finalize with the length so `"a"` and
/// `"a\0"` cannot collide.
fn lane(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = splitmix64(seed);
    for chunk in bytes.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        h = splitmix64(h ^ u64::from_le_bytes(word));
    }
    splitmix64(h ^ bytes.len() as u64)
}

impl Key {
    /// The key of `spec` under the current [`CACHE_EPOCH`].
    #[must_use]
    pub fn for_spec(spec: &str) -> Key {
        Key::with_epoch(CACHE_EPOCH, spec)
    }

    /// The key of `spec` under an explicit epoch (the store uses this;
    /// tests use it to prove epoch bumps invalidate).
    #[must_use]
    pub fn with_epoch(epoch: u64, spec: &str) -> Key {
        let bytes = spec.as_bytes();
        Key {
            hi: lane(splitmix64(epoch ^ HI_SALT), bytes),
            lo: lane(splitmix64(epoch ^ LO_SALT), bytes),
        }
    }

    /// The key as 32 lowercase hex digits.
    #[must_use]
    pub fn hex(&self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }

    /// The two-hex-digit shard directory this key lives in.
    #[must_use]
    pub fn shard(&self) -> String {
        format!("{:02x}", self.hi >> 56)
    }
}

impl fmt::Debug for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Key({})", self.hex())
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_stable_across_calls() {
        let a = Key::for_spec("benchmark=ipfwdr traffic=high");
        let b = Key::for_spec("benchmark=ipfwdr traffic=high");
        assert_eq!(a, b);
        assert_eq!(a.hex(), b.hex());
        assert_eq!(a.hex().len(), 32);
    }

    #[test]
    fn distinct_specs_get_distinct_keys() {
        let a = Key::for_spec("seed=1");
        let b = Key::for_spec("seed=2");
        assert_ne!(a, b);
        // Length finalization: a trailing NUL is not free.
        assert_ne!(Key::for_spec("a"), Key::for_spec("a\0"));
        assert_ne!(Key::for_spec(""), Key::for_spec("\0"));
    }

    #[test]
    fn epoch_salts_the_key() {
        let spec = "benchmark=ipfwdr seed=42";
        assert_ne!(Key::with_epoch(1, spec), Key::with_epoch(2, spec));
    }

    #[test]
    fn shard_is_the_leading_byte() {
        let k = Key::for_spec("anything");
        assert_eq!(k.shard(), k.hex()[..2].to_owned());
    }
}
