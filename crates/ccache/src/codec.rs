//! JSON codecs for the simulator's observable outputs.
//!
//! These encode exactly the state the renderers consume — a
//! [`SimReport`] and (for axes that export timelines) a [`Recording`]
//! — such that `decode(encode(x)) == x` **bit-for-bit**: every `u64`
//! round-trips through its decimal token and every `f64` through
//! Rust's shortest round-trip `Display`. That equality is what lets a
//! warm run produce byte-identical tables, `--json` documents and
//! `--record` exports to a cold run (pinned in
//! `crates/core/tests/determinism.rs`).
//!
//! Decoders return `Option`: any structural surprise (unknown policy
//! name, short array, wrong version) is `None`, which the integration
//! layers treat as a cache miss.

use desim::SimTime;
use dvs::PolicyKind;
use nepsim::{MeMode, MeReport, MeRole, ModeAcc, SimReport, WindowIdleSample};
use obs::{Channel, KernelCounters, Recording, Sample};

use crate::json::{escape, num_f64, Value};

/// The payload-format version embedded in every composed payload.
pub const PAYLOAD_VERSION: u64 = 1;

/// Builds a JSON object from pre-rendered member values.
#[must_use]
pub fn obj(fields: &[(&str, String)]) -> String {
    let body: Vec<String> = fields.iter().map(|(k, v)| format!("\"{k}\":{v}")).collect();
    format!("{{{}}}", body.join(","))
}

/// Builds a JSON array from pre-rendered items.
#[must_use]
pub fn arr(items: Vec<String>) -> String {
    format!("[{}]", items.join(","))
}

fn policy_kind_str(kind: PolicyKind) -> String {
    format!("\"{kind}\"")
}

/// Reverses [`PolicyKind`]'s `Display` strings.
#[must_use]
pub fn policy_kind_from_str(name: &str) -> Option<PolicyKind> {
    [
        PolicyKind::NoDvs,
        PolicyKind::Tdvs,
        PolicyKind::Edvs,
        PolicyKind::Combined,
        PolicyKind::QueueAware,
        PolicyKind::Proportional,
        PolicyKind::Custom,
    ]
    .into_iter()
    .find(|k| k.to_string() == name)
}

fn role_json(role: MeRole) -> &'static str {
    match role {
        MeRole::Rx => "\"rx\"",
        MeRole::Tx => "\"tx\"",
    }
}

fn role_from_str(name: &str) -> Option<MeRole> {
    match name {
        "rx" => Some(MeRole::Rx),
        "tx" => Some(MeRole::Tx),
        _ => None,
    }
}

fn mode_acc_json(acc: &ModeAcc) -> String {
    arr(MeMode::ALL
        .iter()
        .map(|&mode| acc.get(mode).as_ps().to_string())
        .collect())
}

fn mode_acc_from_value(v: &Value) -> Option<ModeAcc> {
    let items = v.as_arr()?;
    if items.len() != MeMode::ALL.len() {
        return None;
    }
    let mut acc = ModeAcc::default();
    for (&mode, item) in MeMode::ALL.iter().zip(items) {
        acc.add(mode, SimTime::from_ps(item.as_u64()?));
    }
    Some(acc)
}

fn me_report_json(me: &MeReport) -> String {
    obj(&[
        ("role", role_json(me.role).to_owned()),
        ("acc_ps", mode_acc_json(&me.acc)),
        ("energy_uj", num_f64(me.energy_uj)),
        ("switches", me.switches.to_string()),
        ("final_level", me.final_level.to_string()),
        ("packets_done", me.packets_done.to_string()),
        (
            "level_time_ps",
            arr(me
                .level_time
                .iter()
                .map(|t| t.as_ps().to_string())
                .collect()),
        ),
    ])
}

fn me_report_from_value(v: &Value) -> Option<MeReport> {
    Some(MeReport {
        role: role_from_str(v.str_of("role")?)?,
        acc: mode_acc_from_value(v.get("acc_ps")?)?,
        energy_uj: v.f64_of("energy_uj")?,
        switches: v.u64_of("switches")?,
        final_level: v.usize_of("final_level")?,
        packets_done: v.u64_of("packets_done")?,
        level_time: v
            .arr_of("level_time_ps")?
            .iter()
            .map(|t| t.as_u64().map(SimTime::from_ps))
            .collect::<Option<Vec<_>>>()?,
    })
}

fn window_idle_json(w: &WindowIdleSample) -> String {
    format!(
        "[{},{},{},{}]",
        w.window,
        w.me,
        role_json(w.role),
        num_f64(w.idle)
    )
}

fn window_idle_from_value(v: &Value) -> Option<WindowIdleSample> {
    let items = v.as_arr()?;
    if items.len() != 4 {
        return None;
    }
    Some(WindowIdleSample {
        window: items[0].as_u64()?,
        me: items[1].as_usize()?,
        role: role_from_str(items[2].as_str()?)?,
        idle: items[3].as_f64()?,
    })
}

/// A [`SimReport`] as a JSON object.
#[must_use]
pub fn sim_report_json(r: &SimReport) -> String {
    obj(&[
        ("policy", policy_kind_str(r.policy)),
        ("duration_ps", r.duration.as_ps().to_string()),
        ("arrived_packets", r.arrived_packets.to_string()),
        ("arrived_bits", r.arrived_bits.to_string()),
        ("dropped_packets", r.dropped_packets.to_string()),
        ("dropped_tx_packets", r.dropped_tx_packets.to_string()),
        ("forwarded_packets", r.forwarded_packets.to_string()),
        ("forwarded_bits", r.forwarded_bits.to_string()),
        ("mes", arr(r.mes.iter().map(me_report_json).collect())),
        ("me_energy_uj", num_f64(r.me_energy_uj)),
        ("sram_energy_uj", num_f64(r.sram_energy_uj)),
        ("sdram_energy_uj", num_f64(r.sdram_energy_uj)),
        ("static_energy_uj", num_f64(r.static_energy_uj)),
        ("monitor_energy_uj", num_f64(r.monitor_energy_uj)),
        ("sram_accesses", r.sram_accesses.to_string()),
        ("sdram_accesses", r.sdram_accesses.to_string()),
        ("total_switches", r.total_switches.to_string()),
        ("windows", r.windows.to_string()),
        ("bus_bits", r.bus_bits.to_string()),
        ("bus_rate_mbps", num_f64(r.bus_rate_mbps)),
        (
            "kernel",
            format!(
                "[{},{},{}]",
                r.kernel.events_scheduled, r.kernel.events_processed, r.kernel.peak_heap_len
            ),
        ),
        (
            "window_idle",
            arr(r.window_idle.iter().map(window_idle_json).collect()),
        ),
    ])
}

/// Decodes [`sim_report_json`]'s object.
#[must_use]
pub fn sim_report_from_value(v: &Value) -> Option<SimReport> {
    let kernel = v.arr_of("kernel")?;
    if kernel.len() != 3 {
        return None;
    }
    Some(SimReport {
        policy: policy_kind_from_str(v.str_of("policy")?)?,
        duration: SimTime::from_ps(v.u64_of("duration_ps")?),
        arrived_packets: v.u64_of("arrived_packets")?,
        arrived_bits: v.u64_of("arrived_bits")?,
        dropped_packets: v.u64_of("dropped_packets")?,
        dropped_tx_packets: v.u64_of("dropped_tx_packets")?,
        forwarded_packets: v.u64_of("forwarded_packets")?,
        forwarded_bits: v.u64_of("forwarded_bits")?,
        mes: v
            .arr_of("mes")?
            .iter()
            .map(me_report_from_value)
            .collect::<Option<Vec<_>>>()?,
        me_energy_uj: v.f64_of("me_energy_uj")?,
        sram_energy_uj: v.f64_of("sram_energy_uj")?,
        sdram_energy_uj: v.f64_of("sdram_energy_uj")?,
        static_energy_uj: v.f64_of("static_energy_uj")?,
        monitor_energy_uj: v.f64_of("monitor_energy_uj")?,
        sram_accesses: v.u64_of("sram_accesses")?,
        sdram_accesses: v.u64_of("sdram_accesses")?,
        total_switches: v.u64_of("total_switches")?,
        windows: v.u64_of("windows")?,
        bus_bits: v.u64_of("bus_bits")?,
        bus_rate_mbps: v.f64_of("bus_rate_mbps")?,
        kernel: KernelCounters {
            events_scheduled: kernel[0].as_u64()?,
            events_processed: kernel[1].as_u64()?,
            peak_heap_len: kernel[2].as_u64()?,
        },
        window_idle: v
            .arr_of("window_idle")?
            .iter()
            .map(window_idle_from_value)
            .collect::<Option<Vec<_>>>()?,
    })
}

/// A [`Recording`] as a JSON object: emission-ordered
/// `[channel, cycle, value]` triples.
#[must_use]
pub fn recording_json(rec: &Recording) -> String {
    let samples: Vec<String> = rec
        .samples()
        .iter()
        .map(|s| {
            format!(
                "[\"{}\",{},{}]",
                escape(s.channel.name()),
                s.cycle,
                num_f64(s.value)
            )
        })
        .collect();
    obj(&[("samples", arr(samples))])
}

/// Decodes [`recording_json`]'s object.
#[must_use]
pub fn recording_from_value(v: &Value) -> Option<Recording> {
    let samples = v
        .arr_of("samples")?
        .iter()
        .map(|s| {
            let triple = s.as_arr()?;
            if triple.len() != 3 {
                return None;
            }
            Some(Sample {
                channel: triple[0].as_str()?.parse::<Channel>().ok()?,
                cycle: triple[1].as_u64()?,
                value: triple[2].as_f64()?,
            })
        })
        .collect::<Option<Vec<_>>>()?;
    Some(Recording::from_samples(samples))
}

fn versioned(v: &Value) -> Option<&Value> {
    (v.u64_of("v")? == PAYLOAD_VERSION).then_some(v)
}

/// Payload for a segment-snapshot cell (scenario axis): the cumulative
/// [`SimReport`] at each planned boundary.
#[must_use]
pub fn snapshots_payload(snapshots: &[SimReport]) -> String {
    obj(&[
        ("v", PAYLOAD_VERSION.to_string()),
        (
            "snapshots",
            arr(snapshots.iter().map(sim_report_json).collect()),
        ),
    ])
}

/// Decodes [`snapshots_payload`].
#[must_use]
pub fn parse_snapshots(payload: &str) -> Option<Vec<SimReport>> {
    let v = Value::parse(payload)?;
    versioned(&v)?
        .arr_of("snapshots")?
        .iter()
        .map(sim_report_from_value)
        .collect()
}

/// Payload for a recorded cell (fleet axis): the report plus the
/// recording its folds absorb.
#[must_use]
pub fn recorded_payload(report: &SimReport, recording: &Recording) -> String {
    obj(&[
        ("v", PAYLOAD_VERSION.to_string()),
        ("sim", sim_report_json(report)),
        ("rec", recording_json(recording)),
    ])
}

/// Decodes [`recorded_payload`].
#[must_use]
pub fn parse_recorded(payload: &str) -> Option<(SimReport, Recording)> {
    let v = Value::parse(payload)?;
    let v = versioned(&v)?;
    Some((
        sim_report_from_value(v.get("sim")?)?,
        recording_from_value(v.get("rec")?)?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nepsim::{MemRecorder, NpuConfig, Simulator};

    fn simulate() -> (SimReport, Recording) {
        let config = NpuConfig::builder()
            .seed(7)
            .policy("tdvs:threshold=1400".parse().unwrap())
            .build();
        let mut sim = Simulator::new(config).with_recorder(Box::new(MemRecorder::new()));
        let report = sim.run_cycles(200_000);
        (report, sim.take_recording())
    }

    #[test]
    fn sim_report_round_trips_bit_exactly() {
        let (report, _) = simulate();
        let encoded = sim_report_json(&report);
        let decoded = sim_report_from_value(&Value::parse(&encoded).unwrap()).unwrap();
        assert_eq!(decoded, report);
        // PartialEq on f64 fields is exact equality, but double-check a
        // couple of derived quantities down to the bit.
        assert_eq!(
            decoded.mean_power_w().to_bits(),
            report.mean_power_w().to_bits()
        );
        assert_eq!(
            decoded.total_energy_uj().to_bits(),
            report.total_energy_uj().to_bits()
        );
    }

    #[test]
    fn recording_round_trips_exactly() {
        let (report, recording) = simulate();
        assert!(!recording.is_empty());
        let payload = recorded_payload(&report, &recording);
        let (r2, rec2) = parse_recorded(&payload).unwrap();
        assert_eq!(r2, report);
        assert_eq!(rec2, recording);
    }

    #[test]
    fn snapshots_round_trip() {
        let (report, _) = simulate();
        let payload = snapshots_payload(&[report.clone(), report.clone()]);
        let decoded = parse_snapshots(&payload).unwrap();
        assert_eq!(decoded, vec![report.clone(), report]);
    }

    #[test]
    fn policy_kind_names_round_trip() {
        for kind in [
            PolicyKind::NoDvs,
            PolicyKind::Tdvs,
            PolicyKind::Edvs,
            PolicyKind::Combined,
            PolicyKind::QueueAware,
            PolicyKind::Proportional,
            PolicyKind::Custom,
        ] {
            assert_eq!(policy_kind_from_str(&kind.to_string()), Some(kind));
        }
        assert_eq!(policy_kind_from_str("nonesuch"), None);
    }

    #[test]
    fn decoders_reject_mangled_payloads() {
        let (report, recording) = simulate();
        let payload = recorded_payload(&report, &recording);
        assert!(parse_recorded(&payload[..payload.len() / 2]).is_none());
        assert!(parse_recorded(&payload.replace("\"v\":1", "\"v\":2")).is_none());
        assert!(parse_recorded(&payload.replace("TDVS", "XDVS")).is_none());
        assert!(parse_snapshots(&payload).is_none());
    }
}
