//! The sharded on-disk store.
//!
//! Layout under the cache root (default `.abdex-cache/`):
//!
//! ```text
//! <root>/<2-hex shard>/<32-hex key>.entry
//! <root>/COUNTERS                       # cumulative hit/miss/store tallies
//! ```
//!
//! Every entry is a small text file: a versioned header line carrying
//! the epoch, key and payload length, a `spec ` echo line carrying the
//! full canonical spec (collision insurance and `gc`-time
//! debuggability), then the payload bytes verbatim.
//!
//! **Writes are atomic**: the payload is written to a `.tmp-<pid>-<n>`
//! file in the shard directory and `rename`d into place, so concurrent
//! `--jobs` workers (or whole processes) racing on the same cell can
//! never interleave bytes — the last complete write wins, and every
//! racer wrote the same deterministic payload anyway.
//!
//! **Reads are corruption-tolerant**: a missing file, a bad header, an
//! epoch or spec mismatch, or a short payload all return `None`, which
//! callers treat as a miss and re-simulate. A cache can slow you down
//! at worst; it can never change a result.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::SystemTime;

use obs::CacheCounters;

use crate::key::{Key, CACHE_EPOCH};

/// The default cache directory, relative to the working directory.
pub const DEFAULT_DIR: &str = ".abdex-cache";

/// The entry-format version tag leading every header line.
const FORMAT: &str = "abdex-ccache v1";

/// The counters-file name inside the cache root.
const COUNTERS_FILE: &str = "COUNTERS";

/// Monotonic suffix for temp-file names within this process.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Aggregate size of (part of) the store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of `.entry` files.
    pub entries: u64,
    /// Their total size in bytes.
    pub bytes: u64,
}

/// A content-addressed result store rooted at one directory.
///
/// All methods take `&self` and the counters are atomics, so a `&Cache`
/// is freely shared across the runner's scoped worker threads.
#[derive(Debug)]
pub struct Cache {
    root: PathBuf,
    epoch: u64,
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
}

impl Cache {
    /// Opens (creating if needed) a cache rooted at `dir`, keyed under
    /// the current [`CACHE_EPOCH`].
    ///
    /// # Errors
    ///
    /// When the root directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Cache, String> {
        let root: PathBuf = dir.into();
        fs::create_dir_all(&root)
            .map_err(|e| format!("cannot create cache dir {}: {e}", root.display()))?;
        Ok(Cache {
            root,
            epoch: CACHE_EPOCH,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
        })
    }

    /// Overrides the epoch (tests use this to prove an epoch bump
    /// invalidates every old entry).
    #[must_use]
    pub fn with_epoch(mut self, epoch: u64) -> Cache {
        self.epoch = epoch;
        self
    }

    /// The cache root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The epoch keys are salted with.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    fn entry_path(&self, key: Key) -> PathBuf {
        self.root
            .join(key.shard())
            .join(format!("{}.entry", key.hex()))
    }

    fn header(&self, key: Key, payload_len: usize) -> String {
        format!(
            "{FORMAT} epoch={} key={} len={payload_len}",
            self.epoch,
            key.hex()
        )
    }

    /// Looks a spec up, counting a hit or a miss. Returns the payload
    /// only when the entry is fully intact: header, epoch, key, spec
    /// echo and payload length all check out.
    #[must_use]
    pub fn lookup(&self, spec: &str) -> Option<String> {
        let key = Key::with_epoch(self.epoch, spec);
        let payload = self.read_entry(key, spec);
        match payload {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        payload
    }

    fn read_entry(&self, key: Key, spec: &str) -> Option<String> {
        let text = fs::read_to_string(self.entry_path(key)).ok()?;
        let (header, rest) = text.split_once('\n')?;
        let (spec_line, payload) = rest.split_once('\n')?;
        let expected_header = self.header(key, payload.len());
        (header == expected_header && spec_line.strip_prefix("spec ") == Some(spec))
            .then(|| payload.to_owned())
    }

    /// Re-books one counted hit as a miss — for callers whose payload
    /// decode failed after a structurally valid entry was returned.
    pub fn demote_hit(&self) {
        self.hits.fetch_sub(1, Ordering::Relaxed);
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Publishes a payload under its spec's key: temp file + rename, so
    /// racing writers leave exactly one valid entry. Best-effort — an
    /// I/O failure drops the entry (and the store count), never the
    /// result.
    pub fn publish(&self, spec: &str, payload: &str) {
        debug_assert!(!spec.contains('\n'), "cache specs are single-line");
        let key = Key::with_epoch(self.epoch, spec);
        if self.write_entry(key, spec, payload).is_some() {
            self.stores.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn write_entry(&self, key: Key, spec: &str, payload: &str) -> Option<()> {
        let shard = self.root.join(key.shard());
        fs::create_dir_all(&shard).ok()?;
        let tmp = shard.join(format!(
            ".tmp-{}-{}",
            process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let contents = format!(
            "{}\nspec {spec}\n{payload}",
            self.header(key, payload.len())
        );
        let written = fs::File::create(&tmp)
            .and_then(|mut f| f.write_all(contents.as_bytes()))
            .and_then(|()| fs::rename(&tmp, self.entry_path(key)));
        if written.is_err() {
            let _ = fs::remove_file(&tmp);
            return None;
        }
        Some(())
    }

    /// Snapshot of this handle's in-memory counters.
    #[must_use]
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
        }
    }

    /// Drains this handle's in-memory counters into the persisted
    /// `COUNTERS` file (read-add-rewrite with an atomic rename), so a
    /// later `abdex cache stats` — a separate process — can report
    /// them. Best-effort, like every other write.
    pub fn flush_counters(&self) {
        let delta = CacheCounters {
            hits: self.hits.swap(0, Ordering::Relaxed),
            misses: self.misses.swap(0, Ordering::Relaxed),
            stores: self.stores.swap(0, Ordering::Relaxed),
        };
        if delta.hits == 0 && delta.misses == 0 && delta.stores == 0 {
            return;
        }
        let total = self.persisted_counters();
        let contents = format!(
            "abdex-ccache-counters v1\nhits {}\nmisses {}\nstores {}\n",
            total.hits + delta.hits,
            total.misses + delta.misses,
            total.stores + delta.stores,
        );
        let tmp = self.root.join(format!(
            ".tmp-counters-{}-{}",
            process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let written = fs::File::create(&tmp)
            .and_then(|mut f| f.write_all(contents.as_bytes()))
            .and_then(|()| fs::rename(&tmp, self.root.join(COUNTERS_FILE)));
        if written.is_err() {
            let _ = fs::remove_file(&tmp);
        }
    }

    /// The cumulative counters previously flushed to this cache dir
    /// (zeros when none, or when the file is damaged).
    #[must_use]
    pub fn persisted_counters(&self) -> CacheCounters {
        let Ok(text) = fs::read_to_string(self.root.join(COUNTERS_FILE)) else {
            return CacheCounters::default();
        };
        let mut lines = text.lines();
        if lines.next() != Some("abdex-ccache-counters v1") {
            return CacheCounters::default();
        }
        let mut counters = CacheCounters::default();
        for line in lines {
            let Some((name, value)) = line.split_once(' ') else {
                continue;
            };
            let Ok(value) = value.parse() else { continue };
            match name {
                "hits" => counters.hits = value,
                "misses" => counters.misses = value,
                "stores" => counters.stores = value,
                _ => {}
            }
        }
        counters
    }

    /// Every entry on disk: `(path, bytes, mtime)`, unordered.
    fn entries(&self) -> Vec<(PathBuf, u64, SystemTime)> {
        let mut out = Vec::new();
        let Ok(shards) = fs::read_dir(&self.root) else {
            return out;
        };
        for shard in shards.flatten() {
            let path = shard.path();
            if !path.is_dir() {
                continue;
            }
            let Ok(files) = fs::read_dir(&path) else {
                continue;
            };
            for file in files.flatten() {
                let path = file.path();
                if path.extension().is_some_and(|e| e == "entry") {
                    if let Ok(meta) = file.metadata() {
                        let mtime = meta.modified().unwrap_or(SystemTime::UNIX_EPOCH);
                        out.push((path, meta.len(), mtime));
                    }
                }
            }
        }
        out
    }

    /// Entry count and total bytes currently on disk.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let mut stats = CacheStats::default();
        for (_, bytes, _) in self.entries() {
            stats.entries += 1;
            stats.bytes += bytes;
        }
        stats
    }

    /// Evicts oldest-first (modification time, then path as the
    /// deterministic tiebreak) until the store fits in `max_bytes`.
    /// Returns what was removed.
    #[must_use]
    pub fn gc(&self, max_bytes: u64) -> CacheStats {
        let mut entries = self.entries();
        entries.sort_by(|a, b| (a.2, &a.0).cmp(&(b.2, &b.0)));
        let mut total: u64 = entries.iter().map(|(_, bytes, _)| bytes).sum();
        let mut removed = CacheStats::default();
        for (path, bytes, _) in entries {
            if total <= max_bytes {
                break;
            }
            if fs::remove_file(&path).is_ok() {
                total -= bytes;
                removed.entries += 1;
                removed.bytes += bytes;
            }
        }
        removed
    }

    /// Removes every entry and the counters file. Returns the number of
    /// entries removed.
    pub fn clear(&self) -> u64 {
        let mut removed = 0;
        for (path, _, _) in self.entries() {
            if fs::remove_file(&path).is_ok() {
                removed += 1;
            }
        }
        let _ = fs::remove_file(self.root.join(COUNTERS_FILE));
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_cache(tag: &str) -> Cache {
        let dir =
            std::env::temp_dir().join(format!("abdex-ccache-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        Cache::open(dir).unwrap()
    }

    #[test]
    fn publish_then_lookup_round_trips() {
        let cache = temp_cache("roundtrip");
        assert_eq!(cache.lookup("spec a"), None);
        cache.publish("spec a", "{\"v\":1}");
        assert_eq!(cache.lookup("spec a").as_deref(), Some("{\"v\":1}"));
        let c = cache.counters();
        assert_eq!((c.hits, c.misses, c.stores), (1, 1, 1));
        let _ = fs::remove_dir_all(cache.root());
    }

    #[test]
    fn multiline_payloads_survive() {
        let cache = temp_cache("multiline");
        let payload = "line one\nline two\n";
        cache.publish("s", payload);
        assert_eq!(cache.lookup("s").as_deref(), Some(payload));
        let _ = fs::remove_dir_all(cache.root());
    }

    #[test]
    fn stats_gc_and_clear_account_for_entries() {
        let cache = temp_cache("gc");
        for i in 0..4 {
            cache.publish(&format!("cell {i}"), &"x".repeat(100));
        }
        let stats = cache.stats();
        assert_eq!(stats.entries, 4);
        assert!(stats.bytes > 400);
        let removed = cache.gc(stats.bytes / 2);
        assert!(removed.entries >= 1);
        assert!(cache.stats().bytes <= stats.bytes / 2);
        assert_eq!(cache.clear(), 4 - removed.entries);
        assert_eq!(cache.stats(), CacheStats::default());
        let _ = fs::remove_dir_all(cache.root());
    }

    #[test]
    fn counters_persist_across_handles() {
        let cache = temp_cache("counters");
        cache.publish("k", "v");
        let _ = cache.lookup("k");
        let _ = cache.lookup("absent");
        cache.flush_counters();
        // The handle's in-memory counters drained into the file.
        let c = cache.counters();
        assert_eq!((c.hits, c.misses, c.stores), (0, 0, 0));
        let reopened = Cache::open(cache.root()).unwrap();
        let p = reopened.persisted_counters();
        assert_eq!((p.hits, p.misses, p.stores), (1, 1, 1));
        // A second flush accumulates.
        let _ = reopened.lookup("k");
        reopened.flush_counters();
        assert_eq!(reopened.persisted_counters().hits, 2);
        let _ = fs::remove_dir_all(cache.root());
    }
}
