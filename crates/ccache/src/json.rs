//! A minimal JSON reader (and two writer helpers) for cache payloads.
//!
//! Numbers keep their **raw token** ([`Value::Num`]) instead of eagerly
//! converting to `f64`: a `u64` parses back exactly (no 2^53 loss), and
//! an `f64` written with Rust's shortest round-trip `Display` reparses
//! to the very same bits. That is what lets a cache hit reproduce a
//! cold run byte-for-byte through every renderer.
//!
//! The reader is deliberately strict-enough-and-no-more: it accepts the
//! JSON this workspace writes (objects, arrays, strings with standard
//! escapes, numbers, booleans, null) and returns `None` on anything
//! malformed — corruption tolerance at the parse layer, so a damaged
//! entry degrades to a cache miss instead of a panic.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw token.
    Num(String),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Parses a complete JSON document; `None` on any syntax error or
    /// trailing garbage.
    #[must_use]
    pub fn parse(text: &str) -> Option<Value> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        (pos == bytes.len()).then_some(v)
    }

    /// Object member lookup (first match).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements, when this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string, when this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, when this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as `u64` (exact — parses the raw token).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(tok) => tok.parse().ok(),
            _ => None,
        }
    }

    /// The number as `usize`.
    #[must_use]
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Value::Num(tok) => tok.parse().ok(),
            _ => None,
        }
    }

    /// The number as `f64` (bit-exact for tokens written by
    /// [`num_f64`], which uses shortest round-trip formatting).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(tok) => tok.parse().ok(),
            _ => None,
        }
    }

    /// `self[key]` as `u64`.
    #[must_use]
    pub fn u64_of(&self, key: &str) -> Option<u64> {
        self.get(key)?.as_u64()
    }

    /// `self[key]` as `usize`.
    #[must_use]
    pub fn usize_of(&self, key: &str) -> Option<usize> {
        self.get(key)?.as_usize()
    }

    /// `self[key]` as `f64`.
    #[must_use]
    pub fn f64_of(&self, key: &str) -> Option<f64> {
        self.get(key)?.as_f64()
    }

    /// `self[key]` as a string.
    #[must_use]
    pub fn str_of(&self, key: &str) -> Option<&str> {
        self.get(key)?.as_str()
    }

    /// `self[key]` as an array.
    #[must_use]
    pub fn arr_of(&self, key: &str) -> Option<&[Value]> {
        self.get(key)?.as_arr()
    }
}

/// JSON string escaping (quotes, backslash, `\u00XX` for controls) —
/// the same convention the CLI's JSON renderers use.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// An `f64` as its shortest round-trip decimal token. Finite values
/// only — non-finite values render as `null`, which fails decoding and
/// degrades to a cache miss (the simulator never reports them).
#[must_use]
pub fn num_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(b) = bytes.get(*pos) {
        match b {
            b' ' | b'\t' | b'\n' | b'\r' => *pos += 1,
            _ => break,
        }
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Option<Value> {
    skip_ws(bytes, pos);
    match bytes.get(*pos)? {
        b'{' => parse_obj(bytes, pos),
        b'[' => parse_arr(bytes, pos),
        b'"' => parse_string(bytes, pos).map(Value::Str),
        b't' => parse_literal(bytes, pos, "true", Value::Bool(true)),
        b'f' => parse_literal(bytes, pos, "false", Value::Bool(false)),
        b'n' => parse_literal(bytes, pos, "null", Value::Null),
        _ => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Option<Value> {
    let end = *pos + lit.len();
    if bytes.get(*pos..end)? == lit.as_bytes() {
        *pos = end;
        Some(value)
    } else {
        None
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Option<Value> {
    let start = *pos;
    while let Some(b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E' => *pos += 1,
            _ => break,
        }
    }
    if *pos == start {
        return None;
    }
    let token = std::str::from_utf8(&bytes[start..*pos]).ok()?;
    // Validate the token is numeric at all; exactness is the caller's
    // accessor's job.
    token.parse::<f64>().ok()?;
    Some(Value::Num(token.to_owned()))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Option<String> {
    if bytes.get(*pos)? != &b'"' {
        return None;
    }
    *pos += 1;
    let mut out: Vec<u8> = Vec::new();
    loop {
        match bytes.get(*pos)? {
            b'"' => {
                *pos += 1;
                return String::from_utf8(out).ok();
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos)? {
                    b'"' => out.push(b'"'),
                    b'\\' => out.push(b'\\'),
                    b'/' => out.push(b'/'),
                    b'b' => out.push(0x08),
                    b'f' => out.push(0x0c),
                    b'n' => out.push(b'\n'),
                    b'r' => out.push(b'\r'),
                    b't' => out.push(b'\t'),
                    b'u' => {
                        let hex = std::str::from_utf8(bytes.get(*pos + 1..*pos + 5)?).ok()?;
                        let code = u32::from_str_radix(hex, 16).ok()?;
                        // BMP only — all this workspace ever escapes.
                        let c = char::from_u32(code)?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                        *pos += 4;
                    }
                    _ => return None,
                }
                *pos += 1;
            }
            &b => {
                out.push(b);
                *pos += 1;
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Option<Value> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos)? == &b']' {
        *pos += 1;
        return Some(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos)? {
            b',' => *pos += 1,
            b']' => {
                *pos += 1;
                return Some(Value::Arr(items));
            }
            _ => return None,
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Option<Value> {
    *pos += 1; // consume '{'
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos)? == &b'}' {
        *pos += 1;
        return Some(Value::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos)? != &b':' {
            return None;
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos)? {
            b',' => *pos += 1,
            b'}' => {
                *pos += 1;
                return Some(Value::Obj(members));
            }
            _ => return None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = Value::parse(r#"{"a":[1,2.5,"x"],"b":{"c":true,"d":null}}"#).unwrap();
        assert_eq!(v.arr_of("a").unwrap().len(), 3);
        assert_eq!(v.arr_of("a").unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.arr_of("a").unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(v.arr_of("a").unwrap()[2].as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Value::Null));
    }

    #[test]
    fn u64_round_trips_exactly_beyond_2_53() {
        let big = u64::MAX - 3;
        let v = Value::parse(&format!("{{\"n\":{big}}}")).unwrap();
        assert_eq!(v.u64_of("n"), Some(big));
    }

    #[test]
    fn f64_round_trips_bit_exactly() {
        for x in [0.1, 1.0 / 3.0, 2.5e-7, 123_456.789_012_345, -0.0, 1e300] {
            let tok = num_f64(x);
            let v = Value::parse(&format!("{{\"x\":{tok}}}")).unwrap();
            assert_eq!(v.f64_of("x").unwrap().to_bits(), x.to_bits(), "{tok}");
        }
    }

    #[test]
    fn strings_escape_and_unescape() {
        let original = "a \"quoted\" back\\slash\nnewline\ttab \u{1} control";
        let doc = format!("{{\"s\":\"{}\"}}", escape(original));
        let v = Value::parse(&doc).unwrap();
        assert_eq!(v.str_of("s"), Some(original));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "{\"a\":1} trailing",
            "\"unterminated",
            "{'single':1}",
            "nul",
        ] {
            assert!(Value::parse(bad).is_none(), "accepted {bad:?}");
        }
    }

    #[test]
    fn non_finite_writes_as_null() {
        assert_eq!(num_f64(f64::NAN), "null");
        assert_eq!(num_f64(f64::INFINITY), "null");
    }
}
