//! Adversarial paths of the result cache: corruption, truncation,
//! epoch bumps, and racing writers. The invariant under attack is
//! always the same — a damaged or stale cache degrades to a miss (the
//! caller re-simulates), never to a wrong or torn result.

use std::fs;
use std::path::PathBuf;

use ccache::{Cache, CacheStats, Key};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("abdex-ccache-adv-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// The on-disk path of a spec's entry (mirrors the store layout).
fn entry_path(cache: &Cache, spec: &str) -> PathBuf {
    let key = Key::with_epoch(cache.epoch(), spec);
    cache
        .root()
        .join(key.shard())
        .join(format!("{}.entry", key.hex()))
}

#[test]
fn corrupted_entry_is_a_miss() {
    let dir = temp_dir("corrupt");
    let cache = Cache::open(&dir).unwrap();
    let spec = "benchmark=ipfwdr traffic=high nodvs cycles=100 seed=1";
    cache.publish(spec, "{\"v\":1,\"payload\":\"intact\"}");
    assert!(cache.lookup(spec).is_some());

    // Flip payload bytes: the header's length still matches but the
    // caller's decode would see garbage — here we garble the header
    // itself, which the store catches directly.
    let path = entry_path(&cache, spec);
    let mut bytes = fs::read(&path).unwrap();
    bytes[0] ^= 0xff;
    fs::write(&path, &bytes).unwrap();
    assert_eq!(cache.lookup(spec), None, "garbled header must miss");

    // Entirely bogus contents.
    fs::write(&path, b"not an entry at all").unwrap();
    assert_eq!(cache.lookup(spec), None);

    // Re-publishing heals the cell.
    cache.publish(spec, "{\"v\":1,\"payload\":\"healed\"}");
    assert_eq!(
        cache.lookup(spec).as_deref(),
        Some("{\"v\":1,\"payload\":\"healed\"}")
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn truncated_entry_is_a_miss() {
    let dir = temp_dir("truncate");
    let cache = Cache::open(&dir).unwrap();
    let spec = "cell under test";
    cache.publish(spec, &"x".repeat(4096));
    let path = entry_path(&cache, spec);
    let full = fs::read(&path).unwrap();

    // Truncate mid-payload: the header's recorded length no longer
    // matches what is on disk.
    fs::write(&path, &full[..full.len() - 100]).unwrap();
    assert_eq!(cache.lookup(spec), None, "short payload must miss");

    // Truncate before the payload even starts.
    fs::write(&path, &full[..10]).unwrap();
    assert_eq!(cache.lookup(spec), None);

    // Empty file.
    fs::write(&path, b"").unwrap();
    assert_eq!(cache.lookup(spec), None);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn spec_echo_guards_against_key_collisions() {
    let dir = temp_dir("echo");
    let cache = Cache::open(&dir).unwrap();
    cache.publish("spec a", "payload a");
    // Copy a's entry into b's address: a simulated 128-bit collision
    // (or a mis-filed entry). The spec echo line catches it.
    let a = entry_path(&cache, "spec a");
    let b = entry_path(&cache, "spec b");
    fs::create_dir_all(b.parent().unwrap()).unwrap();
    fs::copy(&a, &b).unwrap();
    assert_eq!(cache.lookup("spec b"), None, "foreign spec echo must miss");
    assert_eq!(cache.lookup("spec a").as_deref(), Some("payload a"));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn epoch_bump_invalidates_old_entries() {
    let dir = temp_dir("epoch");
    let spec = "benchmark=ipfwdr traffic=high nodvs cycles=100 seed=1";

    let old = Cache::open(&dir).unwrap().with_epoch(1);
    old.publish(spec, "result from epoch 1");
    assert!(old.lookup(spec).is_some());

    // Same directory, bumped epoch: the old entry is unreachable (its
    // key was salted differently), so the cell re-simulates.
    let new = Cache::open(&dir).unwrap().with_epoch(2);
    assert_eq!(new.lookup(spec), None, "epoch bump must invalidate");
    new.publish(spec, "result from epoch 2");
    assert_eq!(new.lookup(spec).as_deref(), Some("result from epoch 2"));

    // Both generations coexist on disk (old ones age out via gc)...
    assert_eq!(
        new.stats(),
        CacheStats {
            entries: 2,
            bytes: new.stats().bytes
        }
    );
    // ...and the old handle still resolves its own generation.
    assert_eq!(old.lookup(spec).as_deref(), Some("result from epoch 1"));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn racing_writers_leave_one_valid_entry() {
    let dir = temp_dir("race");
    let cache = Cache::open(&dir).unwrap();
    let spec = "hot cell every worker wants";

    // Two distinguishable (same-length) payloads: in production racers
    // write identical bytes, but distinct ones prove atomicity — a torn
    // write would interleave As and Bs.
    let payload_a = "A".repeat(8192);
    let payload_b = "B".repeat(8192);

    std::thread::scope(|scope| {
        for worker in 0..8 {
            let cache = &cache;
            let (payload_a, payload_b) = (&payload_a, &payload_b);
            let payload = if worker % 2 == 0 {
                payload_a
            } else {
                payload_b
            };
            scope.spawn(move || {
                for _ in 0..50 {
                    cache.publish(spec, payload);
                    // Interleave reads: a reader must never observe a
                    // torn entry mid-publish.
                    if let Some(seen) = cache.lookup(spec) {
                        assert!(
                            seen == *payload_a || seen == *payload_b,
                            "torn entry observed"
                        );
                    }
                }
            });
        }
    });

    // Exactly one entry file remains, fully valid, no temp litter.
    let stats = cache.stats();
    assert_eq!(stats.entries, 1);
    let survivor = cache.lookup(spec).expect("final entry is intact");
    assert!(survivor == payload_a || survivor == payload_b);
    let shard = entry_path(&cache, spec);
    let leftovers: Vec<_> = fs::read_dir(shard.parent().unwrap())
        .unwrap()
        .flatten()
        .filter(|e| e.file_name().to_string_lossy().starts_with(".tmp"))
        .collect();
    assert!(
        leftovers.is_empty(),
        "temp files left behind: {leftovers:?}"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn gc_evicts_oldest_first_and_clear_empties() {
    let dir = temp_dir("gc");
    let cache = Cache::open(&dir).unwrap();
    for i in 0..6 {
        cache.publish(&format!("cell {i}"), &format!("{{\"cell\":{i}}}"));
    }
    let before = cache.stats();
    assert_eq!(before.entries, 6);

    let removed = cache.gc(before.bytes / 3);
    assert!(removed.entries >= 1);
    let after = cache.stats();
    assert!(after.bytes <= before.bytes / 3, "{after:?} vs {before:?}");
    assert_eq!(after.entries + removed.entries, 6);

    // gc to zero then clear: nothing survives.
    let _ = cache.gc(0);
    assert_eq!(cache.stats().entries, 0);
    cache.publish("one more", "x");
    assert_eq!(cache.clear(), 1);
    assert_eq!(cache.stats(), CacheStats::default());
    let _ = fs::remove_dir_all(&dir);
}
